#!/usr/bin/env python3
"""Quickstart: the small-update problem, and how AFRAID removes it.

Builds the paper's testbed (5 spin-synchronised HP C3325 drives, 8 KB
stripe units) twice — once as a traditional RAID 5, once as an AFRAID —
issues the same 8 KB write to each, and shows where the time and the disk
I/Os went.  Then it lets the AFRAID array go idle so the background
scrubber restores full redundancy, and prints the availability cost of
the exposure window.
"""

from repro.array import ArrayRequest, paper_array, raid5_array
from repro.availability import TABLE_1, afraid_mttdl, raid5_mttdl_catastrophic
from repro.disk import IoKind
from repro.sim import Simulator


def small_write(sim, array, label):
    request = ArrayRequest(IoKind.WRITE, offset_sectors=10_000, nsectors=16)  # 8 KB
    done = array.submit(request)
    sim.run_until_triggered(done)
    stats = array.stats
    print(f"\n{label}:")
    print(f"  write completed in {request.io_time * 1e3:6.2f} ms")
    print(
        f"  disk I/Os: {stats.preread_ios} pre-reads, "
        f"{stats.foreground_data_writes} data writes, "
        f"{stats.foreground_parity_writes} parity writes "
        f"(total {stats.foreground_disk_ios})"
    )
    return request.io_time


def main():
    print("=== The small-update problem (paper Figure 1) ===")

    sim = Simulator()
    raid5 = raid5_array(sim, name="raid5")
    t_raid5 = small_write(sim, raid5, "RAID 5 (read old data, read old parity, write both)")

    sim2 = Simulator()
    afraid = paper_array(sim2, name="afraid")
    t_afraid = small_write(sim2, afraid, "AFRAID (write the data, mark the stripe)")

    print(f"\n  speedup: {t_raid5 / t_afraid:.1f}x for this single quiet-array write")
    print(f"  dirty stripes after the AFRAID write: {afraid.dirty_stripe_count}")

    print("\n=== Idle-time parity rebuild ===")
    sim2.run(until=sim2.now + 1.0)  # 100 ms idle threshold, then the scrub
    print(f"  after 1 s of idleness: dirty stripes = {afraid.dirty_stripe_count}, "
          f"stripes scrubbed = {afraid.stats.stripes_scrubbed}")

    afraid.finalize()
    tracker = afraid.lag_tracker
    print(f"  the stripe was unprotected for {tracker.unprotected_time * 1e3:.0f} ms "
          f"({tracker.unprotected_fraction:.1%} of the run)")

    print("\n=== What that exposure costs (Section 3) ===")
    params = TABLE_1
    raid5_mttdl = raid5_mttdl_catastrophic(5, params.mttf_disk_h, params.mttr_h)
    exposed = afraid_mttdl(5, params.mttf_disk_h, params.mttr_h, tracker.unprotected_fraction)
    print(f"  RAID 5 disk-related MTTDL: {raid5_mttdl:.2e} hours")
    print(f"  AFRAID disk-related MTTDL at this exposure: {exposed:.2e} hours")
    print(f"  ... both dwarfed by the ~{params.mttdl_support_h:.0e}-hour support hardware limit,")
    print("  which is the paper's point: the redundancy being traded away was surplus.")


if __name__ == "__main__":
    main()
