#!/usr/bin/env python3
"""The AFRAID dial: sweep MTTDL_x targets on one workload (paper Figure 4).

For a chosen workload, runs the full policy ladder — RAID 5, a series of
MTTDL_x targets from tight to loose, baseline AFRAID, RAID 0 — and prints
mean I/O time against delivered availability, plus an ASCII rendering of
the trade-off curve.

Usage: python policy_tradeoff.py [workload] [duration_s]
"""

import sys

from repro.harness import format_table, policy_ladder, run_policy_grid, tradeoff_curve


def ascii_curve(points, width=60, height=12):
    """Plot relative performance (x) vs relative availability (y)."""
    xs = [point.relative_performance for point in points]
    x_max = max(xs) * 1.05
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    for point in points:
        column = int(point.relative_performance / x_max * width)
        row = height - int(min(point.relative_availability, 1.0) * height)
        grid[row][column] = "o"
    lines = ["availability (rel. to RAID 5)"]
    for row_index, row in enumerate(grid):
        label = f"{1.0 - row_index / height:4.1f} |"
        lines.append(label + "".join(row))
    lines.append("      " + "-" * (width + 1))
    lines.append(f"      1.0{'performance (rel. to RAID 5)':^{width - 12}}{x_max:.1f}")
    return "\n".join(lines)


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "AS400-1"
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 25.0

    ladder = policy_ladder()
    labels = [entry.label for entry in ladder]
    print(f"running {len(ladder)} policies on {workload} ({duration:g} s each)...")
    grid = run_policy_grid([workload], ladder, duration_s=duration, seed=42)

    rows = []
    for label in labels:
        result = grid[(workload, label)]
        rows.append(
            [
                label,
                f"{result.mean_io_time_ms:.2f}",
                f"{result.unprotected_fraction:.1%}",
                f"{result.mttdl_disk_h:.2e}",
                f"{result.stripes_scrubbed}",
            ]
        )
    print()
    print(
        format_table(
            ["policy", "mean I/O ms", "unprot time", "disk MTTDL h", "scrubbed"],
            rows,
            title=f"{workload}: the availability/performance ladder",
        )
    )

    points = tradeoff_curve(grid, [workload], labels)
    print()
    print(ascii_curve(points))
    print("\nEach 'o' is one policy; moving right trades availability for speed.")


if __name__ == "__main__":
    main()
