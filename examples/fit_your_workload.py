#!/usr/bin/env python3
"""Adapt the reproduction to your own workload: analyze → fit → evaluate.

Takes a block-level trace (here: a synthetic stand-in for "your" capture,
but any CSV in the repo's trace format works), characterises it, fits
generator parameters, and then answers the question the paper poses:
*how much would AFRAID buy you, and what would it cost?* — by running the
fitted workload through RAID 0 / AFRAID / MTTDL_x / RAID 5.

Usage: python fit_your_workload.py [trace.csv | catalog-name] [duration_s]
"""

import sys

from repro.harness import format_table, run_experiment
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, MttdlTargetPolicy, NeverScrubPolicy
from repro.traces import BurstyWorkloadGenerator, make_trace, read_trace_csv
from repro.traces.analysis import analyze
from repro.traces.fit import fit_workload


def load_trace(source, duration):
    if source.endswith(".csv"):
        return read_trace_csv(source)
    return make_trace(source, duration_s=duration, seed=2024)


def main():
    source = sys.argv[1] if len(sys.argv) > 1 else "AS400-2"
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 60.0

    # 1. Characterise the capture.
    captured = load_trace(source, duration)
    report = analyze(captured)
    print(format_table(["property", "value"], report.rows(), title=f"your trace: {report.name}"))

    # 2. Fit generator parameters and regenerate at evaluation scale.
    params = fit_workload(captured, address_space_sectors=15_000_000)
    print(f"\nfitted: bursts of ~{params.requests_per_burst_mean:.0f} requests, "
          f"{params.idle_gap_mean_s:.2f}s idle gaps, "
          f"{params.write_fraction:.0%} writes, "
          f"{params.small_size_sectors * 512 // 1024} KB typical request")
    fitted = BurstyWorkloadGenerator(params, seed=7).generate()

    # 3. What would AFRAID buy this workload?
    rows = []
    for label, policy in [
        ("raid0", NeverScrubPolicy()),
        ("afraid", BaselineAfraidPolicy()),
        ("MTTDL_1e7", MttdlTargetPolicy(1e7)),
        ("raid5", AlwaysRaid5Policy()),
    ]:
        result = run_experiment(fitted, policy)
        rows.append(
            [
                label,
                f"{result.mean_io_time_ms:.2f}",
                f"{result.unprotected_fraction:.1%}",
                f"{result.mttdl_disk_h:.2e}",
                f"{result.mttdl_overall_h:.2e}",
            ]
        )
    print()
    print(
        format_table(
            ["policy", "mean I/O ms", "unprot time", "disk MTTDL h", "overall MTTDL h"],
            rows,
            title="what each policy would deliver on the fitted workload",
        )
    )
    print("\n(Replace the first argument with your own trace CSV — time_s,op,offset_sectors,nsectors,sync —")
    print(" to run this analysis against a real capture.)")


if __name__ == "__main__":
    main()
