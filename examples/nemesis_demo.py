#!/usr/bin/env python3
"""Continuous chaos: a nemesis loop with live SLO gating.

Runs live traffic against an AFRAID array while a nemesis injects disk
deaths, NVRAM losses, and latent sector errors drawn from seeded
distributions — but *holds* injection whenever an SLO rule is breached,
resuming only after the array recovers.  Everything lands on one
correlated timeline: each breach is cause-linked to the fault that
provoked it, every rebuild is a closed span, and the same seed replays
the exact same byte-for-byte event log.

Usage: nemesis_demo.py [duration_s] [seed]
"""

import sys

from repro.faults import NemesisSpec
from repro.harness import run_nemesis


def main() -> None:
    duration = float(sys.argv[1]) if len(sys.argv) > 1 else 12.0
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    spec = NemesisSpec(
        workload="snake",
        duration_s=duration,
        disk_failures=2.0,
        nvram_losses=1.0,
        latent_errors=2.0,
    )
    rules = ("degraded_disks < 1", "scrub_backlog_marks <= 64")
    outcome = run_nemesis(spec, seed=seed, rules=rules)
    timeline = outcome.timeline

    print(f"nemesis soak: {duration:g}s of {spec.workload}, seed {seed}")
    print(f"  requests: {outcome.requests['completed']} completed, "
          f"{outcome.requests['failed']} failed")
    counts = outcome.loop.tracker.counts()
    injected = ", ".join(f"{kind}×{n}" for kind, n in sorted(counts.items()))
    print(f"  faults injected: {injected or '(none)'}")
    print(f"  injection gate: {outcome.loop.holds} hold(s), "
          f"{outcome.loop.resumes} resume(s)")

    # The timeline answers "why": walk each breach back to its fault.
    for breach in timeline.events_of("slo.breach"):
        chain = " <- ".join(
            f"{event.kind}[{event.id}]" for event in timeline.cause_chain(breach)
        )
        print(f"  breach of `{breach.attrs['rule']}` at t={breach.time_s:.2f}s: {chain}")
    for finish in timeline.events_of("rebuild.finish"):
        print(f"  rebuild of disk {finish.attrs['disk']} closed in "
              f"{finish.duration_s:.2f}s ({finish.attrs.get('stripes', '?')} stripes)")

    violations = timeline.check_invariants()
    print(f"  timeline: {len(timeline)} events, "
          f"{len(violations)} invariant violation(s)")

    # Same seed, same story — the soak CI diffs these bytes across reruns.
    rerun = run_nemesis(spec, seed=seed, rules=rules)
    identical = rerun.timeline.to_jsonl() == timeline.to_jsonl()
    print(f"  same-seed rerun byte-identical: {identical}")


if __name__ == "__main__":
    main()
