#!/usr/bin/env python3
"""Observability: trace a run, then read the story back from the data.

Runs a bursty workload under the AFRAID policy with every observability
hook attached — structured tracer, per-class latency histograms, and a
periodic sampler — then:

  * prints the per-class latency percentile table (the paper's Table 2
    numbers, but with tails),
  * reads the scrubber's behaviour straight out of the trace (parity debt
    accumulates during bursts, drains during idle),
  * writes a Chrome trace JSON you can drop into https://ui.perfetto.dev.

Usage: observability_demo.py [workload] [duration_s] [trace_out.json]
"""

import sys

from repro.harness import run_experiment
from repro.obs import (
    HistogramSet,
    PeriodicSampler,
    Tracer,
    attach_array_probes,
)
from repro.policy import BaselineAfraidPolicy


def main(argv):
    workload = argv[1] if len(argv) > 1 else "hplajw"
    duration_s = float(argv[2]) if len(argv) > 2 else 10.0
    out_path = argv[3] if len(argv) > 3 else "observability_demo_trace.json"

    tracer = Tracer()
    hists = HistogramSet()
    samplers = []

    def instrument(sim, array):
        sampler = PeriodicSampler(sim, period_s=0.010, tracer=tracer)
        attach_array_probes(sampler, array)
        sampler.start()
        samplers.append(sampler)

    result = run_experiment(
        workload,
        BaselineAfraidPolicy(),
        duration_s=duration_s,
        tracer=tracer,
        histograms=hists,
        on_array=instrument,
    )

    print(f"{workload} under {result.policy}: "
          f"{result.reads} reads, {result.writes} writes, "
          f"{result.stripes_scrubbed} stripes scrubbed\n")

    # 1. Latency tails, split by what the array was doing for the request.
    print("per-class latency percentiles:")
    header = HistogramSet.table_header()
    print("  " + "  ".join(f"{cell:>12}" for cell in header))
    for row in hists.rows():
        print("  " + "  ".join(f"{cell:>12}" for cell in row))

    # 2. The AFRAID bargain, read straight from the trace: dirty stripes
    # rise while the client is busy and fall back to zero when the idle
    # scrubber gets its turn.
    dirty = tracer.counter_series("dirty_stripes")
    peak = max(value for _, value in dirty)
    final = dirty[-1][1]
    print(f"\nparity debt over time: peak {peak:.0f} dirty stripes, "
          f"{final:.0f} at end of run")

    scrubs = tracer.spans_on("scrubber")
    if scrubs:
        first = min(record[1] for record in scrubs)
        print(f"scrubber made {len(scrubs)} repairs, first at t={first:.3f}s "
              f"(after the first idle threshold expired)")

    # 3. Ship the full timeline for interactive digging.
    tracer.write_chrome(out_path)
    print(f"\nwrote {len(tracer)} trace records to {out_path} "
          f"(open in https://ui.perfetto.dev)")


if __name__ == "__main__":
    main(sys.argv)
