"""Simulation as a service, end to end.

Starts an `afraid-sim serve` daemon in-process on an ephemeral port,
submits a small policy sweep over HTTP, streams per-cell progress as it
happens, then shows the two headline contracts:

* results served over the API are byte-identical to a local
  ``run_cells`` of the same specs;
* a resubmission of the same job is answered entirely from the
  content-addressed cache — done before the POST returns, no worker
  pool involved.

Run with::

    PYTHONPATH=src python examples/service_demo.py [workload] [duration_s] [cache_dir]
"""

import json
import sys
import tempfile
import threading

from repro.harness.runner import ladder_specs, result_to_payload, run_cells
from repro.service import JobManager, ServiceClient, ServiceServer, cell_label


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "hplajw"
    duration_s = float(sys.argv[2]) if len(sys.argv) > 2 else 8.0
    cache_dir = (
        sys.argv[3] if len(sys.argv) > 3
        else tempfile.mkdtemp(prefix="afraid-service-demo-")
    )

    manager = JobManager(jobs=2, cache_dir=cache_dir)
    server = ServiceServer(("127.0.0.1", 0), manager)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    client = ServiceClient(server.url)
    print(f"daemon listening on {server.url} (cache: {cache_dir})")

    payload = {
        "workloads": [workload],
        "targets": [1e7],
        "duration_s": duration_s,
        "seed": 42,
        "include_raid0": False,
    }
    job_id = client.submit(payload)["id"]
    print(f"\nsubmitted {job_id}; streaming events:")
    for event in client.stream_events(job_id):
        if event["event"] == "cell_completed":
            source = "cache" if event["from_cache"] else "simulated"
            print(f"  cell {event['cell']:<24} {source:>9}  "
                  f"{event['latency_s'] * 1e3:8.1f} ms  "
                  f"mean I/O {event['mean_io_time_ms']:.1f} ms")
        else:
            print(f"  [{event['event']}]")

    served = client.result(job_id)
    specs = ladder_specs([workload], [1e7], include_raid0=False,
                         duration_s=duration_s, seed=42)
    print("\nbyte-identity check against a local run_cells of the same specs:")
    local = run_cells(specs, cache_dir=cache_dir)
    for spec in specs:
        a = json.dumps(served["cells"][cell_label(spec)], sort_keys=True)
        b = json.dumps(result_to_payload(local.results[spec.key]), sort_keys=True)
        verdict = "identical" if a == b else "MISMATCH"
        print(f"  {cell_label(spec):<24} served == local sweep: {verdict}")

    warm = client.submit(payload)
    print(f"\nwarm resubmission: state={warm['state']!r} in the 202 response, "
          f"{warm['cells_cached']}/{warm['cells_total']} cells from cache")

    health = client.health()
    print(f"health: {health['jobs_total']} jobs tracked, "
          f"{health['worker_restarts']} worker restarts")

    server.shutdown()
    server.server_close()
    manager.shutdown(drain=True)
    print("drained; bye")


if __name__ == "__main__":
    main()
