#!/usr/bin/env python3
"""Live redundancy-exposure telemetry: watch availability as a trajectory.

Runs a bursty workload under the AFRAID policy with the metrics registry
attached and an exposure poller refreshing the windowed achieved-MTTDL /
MDLR estimators every 50 ms of simulated time, while an SLO engine checks
two declarative objectives at every tick.  Then:

  * prints the final registry state (what a Prometheus scrape would see),
  * compares the windowed achieved MTTDL against eq. (2c) fed the
    whole-run measured exposure,
  * prints the SLO breach/recovery timeline — the instants the array
    crossed its availability objectives and when it recovered,
  * exports the final state in Prometheus text format and the full
    sampled trajectory as JSON lines.

Usage: exposure_demo.py [workload] [duration_s] [metrics.prom] [snaps.jsonl]
"""

import sys

from repro.availability import TABLE_1, afraid_mttdl
from repro.harness import format_quantity, run_experiment
from repro.obs import (
    ExposureMonitor,
    MetricsRegistry,
    RegistrySnapshotter,
    SloEngine,
    SloRule,
    start_exposure_poller,
    write_prometheus,
)
from repro.policy import BaselineAfraidPolicy


def main(argv):
    workload = argv[1] if len(argv) > 1 else "hplajw"
    duration_s = float(argv[2]) if len(argv) > 2 else 10.0
    prom_path = argv[3] if len(argv) > 3 else "exposure_metrics.prom"
    jsonl_path = argv[4] if len(argv) > 4 else "exposure_snaps.jsonl"

    registry = MetricsRegistry()
    monitor = ExposureMonitor(window_s=5.0, params=TABLE_1)
    engine = SloEngine([
        SloRule.parse("parity_lag_bytes < 2e5"),
        SloRule.parse("windowed_unprotected_fraction < 0.75"),
    ])
    snapshotter = RegistrySnapshotter(registry)

    def instrument(sim, array):
        start_exposure_poller(
            sim, monitor, period_s=0.050,
            engine=engine, snapshotter=snapshotter, until=duration_s,
        )

    result = run_experiment(
        workload,
        BaselineAfraidPolicy(),
        duration_s=duration_s,
        registry=registry,
        exposure=monitor,
        on_array=instrument,
    )
    engine.finish(result.horizon_s)

    print(f"{workload} under {result.policy}: "
          f"{result.reads} reads, {result.writes} writes, "
          f"{result.stripes_scrubbed} stripes scrubbed\n")

    # 1. The final registry state — what a scrape at the horizon returns.
    print("final registry state:")
    for name, value in sorted(registry.snapshot().items()):
        print(f"  {name:34} {format_quantity(value)}")

    # 2. Windowed achieved MTTDL vs the analytic whole-run number: the
    # live estimator uses the same eq. (2c) math, clipped to a window.
    analytic = afraid_mttdl(
        result.ndisks, result.params.mttf_disk_h, result.params.mttr_h,
        result.unprotected_fraction,
    )
    windowed = registry.value("windowed_mttdl_h")
    print(f"\nachieved MTTDL: windowed {format_quantity(windowed, ' h')} "
          f"vs whole-run eq. (2c) {format_quantity(analytic, ' h')}")

    # 3. The SLO story: when did the array violate its objectives?
    print("\nSLO breach/recovery timeline:")
    if not engine.events:
        print("  (no objective was ever breached)")
    for event in engine.events:
        print(f"  {event.time_s:8.3f}s  {event.kind.upper():9}  "
              f"{event.rule.describe()}  (value {format_quantity(event.value)})")
    for rule in engine.rules:
        breached = engine.breach_time_s(rule, now=result.horizon_s)
        print(f"  {rule.describe()}: breached {breached:.2f}s "
              f"of {result.horizon_s:.2f}s, {engine.breach_count(rule)} episodes")

    # 4. Ship both serialisations for external tooling.
    write_prometheus(registry, prom_path)
    snapshotter.write_jsonl(jsonl_path)
    print(f"\nPrometheus text exposition -> {prom_path}")
    print(f"{len(snapshotter.snaps)} registry snapshots -> {jsonl_path}")


if __name__ == "__main__":
    main(sys.argv)
