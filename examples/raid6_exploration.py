#!/usr/bin/env python3
"""AFRAID on RAID 6 — the paper's §5 refinement, end to end.

Part 1 uses the byte-accurate dual-parity array: writes real data with
each deferral choice, kills two disks, and shows exactly when recovery
succeeds (both syndromes fresh), partially holds (one deferred), or fails
(both deferred, caught before the rebuild).

Part 2 uses the timing model: the same small write costs 6, 4, or 1 disk
I/Os depending on how many syndrome updates are deferred, and a burst
shows what that does to mean I/O time.
"""

from repro.array.request import ArrayRequest
from repro.disk import IoKind, hp_c3325
from repro.ext.raid6_afraid import DeferralMode, Raid6AfraidArray
from repro.ext.raid6_blocks import Raid6DataLostError, Raid6FunctionalArray
from repro.layout import Raid6Layout
from repro.sim import AllOf, Simulator


def functional_demo():
    print("=== Part 1: real bytes, real Reed-Solomon recovery ===")
    layout = Raid6Layout(ndisks=6, stripe_unit_sectors=8, disk_sectors=64)
    for label, update_p, update_q in [
        ("both syndromes fresh (RAID 6)", True, True),
        ("Q deferred (partial redundancy)", True, False),
        ("both deferred (AFRAID exposure)", False, False),
    ]:
        array = Raid6FunctionalArray(layout, sector_bytes=64)
        data = bytes(range(256)) * 2  # 8 sectors x 64 B
        array.write(0, data, update_p=update_p, update_q=update_q)
        level = array.redundancy_level(0)
        # Kill two of the stripe's data disks.
        array.fail_disk(layout.data_disk(0, 0))
        array.fail_disk(layout.data_disk(0, 2))
        try:
            recovered = array.read(0, 8) == data
            verdict = "recovered both lost units" if recovered else "WRONG DATA"
        except Raid6DataLostError as exc:
            verdict = f"lost: {exc}"
        print(f"  {label}: tolerates {level} failure(s) -> after 2 failures: {verdict}")


def timing_demo():
    print("\n=== Part 2: what each deferral level costs ===")
    print(f"  {'mode':<12} {'I/Os/write':>10} {'quiet write':>12} {'burst mean':>11}")
    for mode in DeferralMode:
        sim = Simulator()
        disks = [hp_c3325(sim, name=f"d{i}") for i in range(6)]
        array = Raid6AfraidArray(sim, disks, stripe_unit_sectors=16, mode=mode,
                                 idle_threshold_s=1e9)
        request = ArrayRequest(IoKind.WRITE, 0, 16)
        done = array.submit(request)
        sim.run_until_triggered(done)
        quiet_ms = request.io_time * 1e3
        ios = array.disk_ios

        events = [array.submit(ArrayRequest(IoKind.WRITE, i * 64, 16)) for i in range(30)]
        sim.run_until_triggered(AllOf(sim, events))
        print(f"  {mode.value:<12} {ios:>10} {quiet_ms:>10.2f}ms {array.mean_io_time * 1e3:>9.2f}ms")

    print("\nDeferring Q keeps every write single-failure-safe at 2/3 of the")
    print("RAID 6 cost; deferring both is the full AFRAID bet on idle time.")


if __name__ == "__main__":
    functional_demo()
    timing_demo()
