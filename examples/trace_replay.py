#!/usr/bin/env python3
"""Replay a workload trace through all three array models.

Generates the cello-usr synthetic trace (a bursty timesharing workload),
round-trips it through the CSV trace format, then replays it through
RAID 0, AFRAID, and RAID 5 arrays, reporting the paper's Table 2/3-style
metrics for each.

Usage: python trace_replay.py [workload] [duration_s]
"""

import sys
import tempfile

from repro.harness import format_table, run_experiment
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, NeverScrubPolicy
from repro.traces import make_trace, read_trace_csv, write_trace_csv


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "cello-usr"
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 30.0

    # 1. Generate the synthetic trace and round-trip it through CSV, the
    #    same path an externally captured trace would take.
    trace = make_trace(workload, duration_s=duration, seed=42)
    with tempfile.NamedTemporaryFile(suffix=".csv", delete=False) as handle:
        path = handle.name
    write_trace_csv(trace, path)
    trace = read_trace_csv(path, name=workload)
    print(f"trace: {len(trace)} requests over {trace.duration_s:g} s "
          f"({trace.write_fraction:.0%} writes, {trace.mean_iops:.1f} IOPS mean, "
          f"{len(trace.idle_gaps(0.1))} idle gaps > 100 ms)")

    # 2. Replay under each model.  Note each run builds a fresh simulator
    #    and array, so the three models see identical request streams.
    rows = []
    results = {}
    for label, policy_factory in [
        ("raid0", NeverScrubPolicy),
        ("afraid", BaselineAfraidPolicy),
        ("raid5", AlwaysRaid5Policy),
    ]:
        result = run_experiment(trace, policy_factory(), duration_s=duration)
        results[label] = result
        rows.append(
            [
                label,
                f"{result.mean_io_time_ms:.2f}",
                f"{result.io_time.p95 * 1e3:.2f}",
                f"{result.unprotected_fraction:.1%}",
                f"{result.mean_parity_lag_bytes / 1024:.1f}",
                f"{result.stripes_scrubbed}",
                f"{result.mttdl_disk_h:.2e}",
            ]
        )

    print()
    print(
        format_table(
            ["model", "mean I/O ms", "p95 ms", "unprot", "lag KB", "scrubbed", "MTTDL h"],
            rows,
            title=f"{workload}: RAID 0 vs AFRAID vs RAID 5",
        )
    )
    speedup = results["raid5"].io_time.mean / results["afraid"].io_time.mean
    raid0_speedup = results["raid5"].io_time.mean / results["raid0"].io_time.mean
    print(f"\nAFRAID is {speedup:.1f}x faster than RAID 5 here "
          f"(RAID 0 is {raid0_speedup:.1f}x) while staying redundant "
          f"{1 - results['afraid'].unprotected_fraction:.0%} of the time.")


if __name__ == "__main__":
    main()
