#!/usr/bin/env python3
"""Walk through Section 3's availability arithmetic, number by number.

Every figure the paper quotes in its availability analysis, recomputed
from the Table 1 constants: the 475,000-year RAID 5 MTTDL, the 0.8 B/h
catastrophic MDLR, the 4 KB/h support-hardware loss rate, the PrestoServe
comparison, and the external-power story.  Run it to sanity-check the
models — or edit the constants to explore your own array.
"""

from repro.availability import (
    CONSERVATIVE_SUPPORT,
    GIBSON_SUPPORT,
    MAINS_ONLY,
    PRESTOSERVE,
    TABLE_1,
    WITH_UPS,
    afraid_mttdl,
    combine_mttdl,
    loss_probability,
    mdlr_raid_catastrophic,
    mdlr_unprotected,
    raid5_mttdl_catastrophic,
)
from repro.availability.lifetime import loss_probability_years
from repro.availability.models import single_disk_mdlr
from repro.harness import format_table

HOURS_PER_YEAR = 24 * 365.25


def main():
    params = TABLE_1
    ndisks = 5

    print("Table 1 — assumed values:")
    print(format_table(["parameter", "value"], params.rows()))

    print("\nSection 3.1 — mean time to first data loss:")
    raid5 = raid5_mttdl_catastrophic(ndisks, params.mttf_disk_h, params.mttr_h)
    print(f"  eq.(1) 5-disk RAID 5 MTTDL = {raid5:.2e} h = {raid5 / HOURS_PER_YEAR:,.0f} years")
    print("  (the paper: '~4.10^9 hours, or about 475,000 years')")

    print("\nSection 3.2 — mean data loss rate:")
    catastrophic = mdlr_raid_catastrophic(ndisks, params.disk_bytes, raid5)
    print(f"  eq.(3) catastrophic MDLR = {catastrophic:.2f} bytes/hour (paper: ~0.8)")
    for lag_kb in (8, 64, 1024):
        rate = mdlr_unprotected(ndisks, lag_kb * 1024, params.mttf_disk_h)
        print(f"  eq.(4) with a {lag_kb:5d} KB mean parity lag: {rate:8.4f} bytes/hour")

    print("\nSection 3.3 — support components dominate:")
    rows = [
        ["2M-hour support (Table 1)", f"{CONSERVATIVE_SUPPORT.mdlr(ndisks, params.disk_bytes) / 1000:.1f} KB/h"],
        ["150k-hour support [Gibson93]", f"{GIBSON_SUPPORT.mdlr(ndisks, params.disk_bytes) / 1000:.1f} KB/h"],
        ["one bare 2 GB disk (1M h)", f"{single_disk_mdlr(params.disk_bytes, 1e6) / 1000:.1f} KB/h"],
    ]
    print(format_table(["failure source", "MDLR"], rows))

    print("\nSection 3.4 — the NVRAM yardstick:")
    print(f"  PrestoServe ({PRESTOSERVE.mttf_h:.0f} h MTTF, 1 MB dirty): "
          f"{PRESTOSERVE.mdlr:.0f} bytes/hour —")
    print("  single-copy NVRAM users already accept more risk than AFRAID's parity lag.")

    print("\nSection 3.5 — external power:")
    print(f"  mains only: MTTDL {MAINS_ONLY.mttdl_h:.0f} h "
          f"(write duty cycle {MAINS_ONLY.write_duty_cycle:.0%})")
    print(f"  with a 200k-hour UPS: MTTDL {WITH_UPS.mttdl_h:.2e} h")

    print("\nSection 3.6 — how much availability is enough?")
    rows = []
    for fraction in (0.0, 0.01, 0.05, 0.10, 0.25, 0.50, 1.00):
        disk_mttdl = afraid_mttdl(ndisks, params.mttf_disk_h, params.mttr_h, fraction)
        overall = combine_mttdl(disk_mttdl, CONSERVATIVE_SUPPORT.mttdl_h)
        rows.append(
            [
                f"{fraction:.0%}",
                f"{disk_mttdl:.2e}",
                f"{overall:.2e}",
                f"{loss_probability_years(overall, 3.0):.2%}",
            ]
        )
    print(
        format_table(
            ["unprotected time", "disk MTTDL h", "overall MTTDL h", "P(loss in 3 yr)"],
            rows,
        )
    )
    print("\nReading the last column top to bottom: even generous exposure moves the")
    print("3-year loss probability only slightly — support hardware was the limit all along.")


if __name__ == "__main__":
    main()
