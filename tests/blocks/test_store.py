"""Tests for the raw block store."""

import numpy as np
import pytest

from repro.blocks import BlockStore, StoreDiskFailedError


class TestValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError):
            BlockStore(ndisks=0, sectors=10)
        with pytest.raises(ValueError):
            BlockStore(ndisks=1, sectors=0)

    def test_extent_bounds(self):
        store = BlockStore(ndisks=2, sectors=10, sector_bytes=16)
        with pytest.raises(ValueError):
            store.read(0, 9, 2)
        with pytest.raises(ValueError):
            store.read(2, 0, 1)
        with pytest.raises(ValueError):
            store.read(0, 0, 0)

    def test_partial_sector_write_rejected(self):
        store = BlockStore(ndisks=1, sectors=10, sector_bytes=16)
        with pytest.raises(ValueError):
            store.write(0, 0, b"short")


class TestDataPath:
    def test_starts_zeroed(self):
        store = BlockStore(ndisks=2, sectors=4, sector_bytes=8)
        assert bytes(store.read(1, 0, 4)) == bytes(32)

    def test_write_read_roundtrip(self):
        store = BlockStore(ndisks=2, sectors=4, sector_bytes=8)
        payload = bytes(range(16))
        store.write(0, 1, payload)
        assert bytes(store.read(0, 1, 2)) == payload
        # Neighbours untouched.
        assert bytes(store.read(0, 0, 1)) == bytes(8)
        assert bytes(store.read(0, 3, 1)) == bytes(8)

    def test_accepts_numpy(self):
        store = BlockStore(ndisks=1, sectors=2, sector_bytes=4)
        store.write(0, 0, np.full(4, 7, dtype=np.uint8))
        assert bytes(store.read(0, 0, 1)) == b"\x07\x07\x07\x07"

    def test_read_returns_copy(self):
        store = BlockStore(ndisks=1, sectors=1, sector_bytes=4)
        first = store.read(0, 0, 1)
        first[:] = 0xFF
        assert bytes(store.read(0, 0, 1)) == bytes(4)


class TestFailure:
    def test_failed_disk_raises(self):
        store = BlockStore(ndisks=2, sectors=4, sector_bytes=8)
        store.fail(1)
        assert store.is_failed(1)
        assert store.failed_disks == [1]
        with pytest.raises(StoreDiskFailedError):
            store.read(1, 0, 1)
        with pytest.raises(StoreDiskFailedError):
            store.write(1, 0, bytes(8))

    def test_other_disks_unaffected(self):
        store = BlockStore(ndisks=2, sectors=4, sector_bytes=8)
        store.write(0, 0, bytes([1] * 8))
        store.fail(1)
        assert bytes(store.read(0, 0, 1)) == bytes([1] * 8)

    def test_replace_gives_fresh_zeroed_disk(self):
        store = BlockStore(ndisks=1, sectors=2, sector_bytes=4)
        store.write(0, 0, b"\x01\x02\x03\x04")
        store.fail(0)
        store.replace(0)
        assert not store.is_failed(0)
        assert bytes(store.read(0, 0, 1)) == bytes(4)
