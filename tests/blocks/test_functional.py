"""Tests for the byte-accurate RAID 5 / AFRAID functional array.

These verify the invariants the paper's availability analysis rests on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blocks import DataLostError, FunctionalArray
from repro.layout import Raid5Layout

SECTOR = 32  # small sectors keep hypothesis cases fast


def make_array(ndisks=5, unit=4, disk_sectors=40):
    layout = Raid5Layout(ndisks=ndisks, stripe_unit_sectors=unit, disk_sectors=disk_sectors)
    return FunctionalArray(layout, sector_bytes=SECTOR)


def payload(nsectors, seed=1):
    return bytes((seed * 37 + i) % 256 for i in range(nsectors * SECTOR))


class TestRaid5Semantics:
    def test_fresh_array_is_fully_consistent(self):
        array = make_array()
        assert all(array.parity_consistent(s) for s in range(array.layout.nstripes))
        assert array.parity_lag_bytes == 0

    def test_write_read_roundtrip(self):
        array = make_array()
        data = payload(4)
        array.write(10, data)
        assert array.read(10, 4) == data

    def test_raid5_write_keeps_parity_consistent(self):
        array = make_array()
        array.write(3, payload(6))
        for stripe in array.layout.stripes_touched(3, 6):
            assert array.parity_consistent(stripe)
        assert array.parity_lag_bytes == 0

    def test_partial_unit_rmw_parity(self):
        """The read-modify-write identity handles sub-unit writes."""
        array = make_array()
        array.write(0, payload(16, seed=2))  # fill stripe 0 completely
        array.write(1, payload(1, seed=9))  # overwrite one sector mid-unit
        assert array.parity_consistent(0)
        assert array.read(1, 1) == payload(1, seed=9)

    def test_clean_stripe_survives_single_disk_failure(self):
        array = make_array()
        data = payload(16, seed=3)
        array.write(0, data)  # whole stripe 0
        array.fail_disk(array.layout.data_disk(0, 1))
        assert array.read(0, 16) == data  # reconstructed through parity

    def test_parity_disk_failure_loses_nothing(self):
        array = make_array()
        data = payload(16, seed=4)
        array.write(0, data)
        array.fail_disk(array.layout.parity_disk(0))
        assert array.read(0, 16) == data
        assert array.lost_data_bytes(array.layout.parity_disk(0)) == 0


class TestAfraidSemantics:
    def test_deferred_write_marks_stripe_dirty(self):
        array = make_array()
        array.write(0, payload(2), update_parity=False)
        assert array.dirty_stripes == frozenset({0})
        assert not array.parity_consistent(0)
        unit_bytes = array.layout.stripe_unit_sectors * SECTOR
        assert array.parity_lag_bytes == array.layout.data_units_per_stripe * unit_bytes

    def test_remarking_dirty_stripe_is_idempotent(self):
        array = make_array()
        array.write(0, payload(2), update_parity=False)
        array.write(4, payload(2, seed=2), update_parity=False)  # same stripe, different unit
        assert array.dirty_stripes == frozenset({0})

    def test_scrub_restores_consistency(self):
        array = make_array()
        array.write(0, payload(2), update_parity=False)
        array.scrub_stripe(0)
        assert array.dirty_stripes == frozenset()
        assert array.parity_consistent(0)

    def test_scrub_all(self):
        array = make_array()
        array.write(0, payload(2), update_parity=False)
        array.write(16, payload(2), update_parity=False)
        assert array.scrub_all() == 2
        assert array.parity_lag_bytes == 0

    def test_dirty_stripe_loses_exactly_one_unit_on_failure(self):
        """The paper's §3.2 loss unit: one stripe unit per dirty stripe."""
        array = make_array()
        array.write(0, payload(2), update_parity=False)
        victim = array.layout.data_disk(0, 3)  # a data disk of stripe 0
        array.fail_disk(victim)
        unit_bytes = array.layout.stripe_unit_sectors * SECTOR
        assert array.lost_data_bytes(victim) == unit_bytes

    def test_dirty_stripe_read_through_failure_raises(self):
        array = make_array()
        array.write(0, payload(2), update_parity=False)
        victim = array.layout.data_disk(0, 0)
        array.fail_disk(victim)
        with pytest.raises(DataLostError):
            array.read(0, 2)

    def test_unwritten_data_in_dirty_stripe_is_also_at_risk(self):
        """'Any write to a stripe unprotects it all' — including old data."""
        array = make_array()
        old = payload(16, seed=5)
        array.write(0, old)  # stripe 0 written redundantly
        array.write(0, payload(2, seed=6), update_parity=False)  # dirty unit 0
        # A *different* unit of the same stripe is now vulnerable too:
        victim = array.layout.data_disk(0, 2)
        array.fail_disk(victim)
        with pytest.raises(DataLostError):
            array.read(8, 2)  # unit 2's data, untouched by the recent write

    def test_scrub_before_failure_saves_data(self):
        array = make_array()
        data = payload(2, seed=7)
        array.write(0, data, update_parity=False)
        array.scrub_stripe(0)
        victim = array.layout.data_disk(0, 0)
        array.fail_disk(victim)
        assert array.read(0, 2) == data

    def test_raid5_write_to_dirty_stripe_stays_dirty(self):
        """Parity already stale: an RMW write cannot repair it."""
        array = make_array()
        array.write(0, payload(2), update_parity=False)
        array.write(4, payload(2, seed=8), update_parity=True)
        assert 0 in array.dirty_stripes
        assert not array.parity_consistent(0)


class TestHypothesisInvariants:
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=150),  # logical sector
                st.integers(min_value=1, max_value=10),  # sectors
                st.booleans(),  # update parity?
                st.integers(min_value=0, max_value=255),  # payload seed
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_scrub_all_always_restores_full_consistency(self, writes):
        array = make_array()
        for logical, nsectors, update_parity, seed in writes:
            logical = min(logical, array.layout.total_data_sectors - nsectors)
            array.write(logical, payload(nsectors, seed=seed), update_parity=update_parity)
        array.scrub_all()
        assert array.parity_lag_bytes == 0
        assert all(array.parity_consistent(s) for s in range(array.layout.nstripes))

    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=150),
                st.integers(min_value=1, max_value=10),
                st.booleans(),
                st.integers(min_value=0, max_value=255),
            ),
            min_size=1,
            max_size=12,
        ),
        victim=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_clean_stripes_always_reconstruct(self, writes, victim):
        """After any write mix + full scrub, any single failure loses nothing."""
        array = make_array()
        expected = {}
        for logical, nsectors, update_parity, seed in writes:
            logical = min(logical, array.layout.total_data_sectors - nsectors)
            data = payload(nsectors, seed=seed)
            array.write(logical, data, update_parity=update_parity)
            for i in range(nsectors):
                expected[logical + i] = data[i * SECTOR : (i + 1) * SECTOR]
        array.scrub_all()
        array.fail_disk(victim)
        for sector, data in expected.items():
            assert array.read(sector, 1) == data
        assert array.lost_data_bytes(victim) == 0

    @given(
        dirty_writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),  # stripe
                st.integers(min_value=0, max_value=255),
            ),
            min_size=1,
            max_size=8,
        ),
        victim=st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_loss_formula_matches_paper(self, dirty_writes, victim):
        """lost = unit_bytes x |{dirty stripes whose parity is NOT on victim}|."""
        array = make_array()
        for stripe, seed in dirty_writes:
            logical = stripe * array.layout.stripe_data_sectors
            array.write(logical, payload(1, seed=seed), update_parity=False)
        dirty = array.dirty_stripes
        array.fail_disk(victim)
        unit_bytes = array.layout.stripe_unit_sectors * SECTOR
        expected = unit_bytes * sum(1 for s in dirty if array.layout.parity_disk(s) != victim)
        assert array.lost_data_bytes(victim) == expected
