"""Sub-unit (§5 bits_per_stripe > 1) semantics of the functional twin."""

import pytest

from repro.blocks import DataLostError, FunctionalArray
from repro.layout import Raid5Layout

SECTOR = 32


def make_array(ndisks=5, unit=8, disk_sectors=80, sub_units=4):
    layout = Raid5Layout(ndisks=ndisks, stripe_unit_sectors=unit, disk_sectors=disk_sectors)
    return FunctionalArray(layout, sector_bytes=SECTOR, sub_units=sub_units)


def payload(nsectors, seed=1):
    return bytes((seed * 37 + i) % 256 for i in range(nsectors * SECTOR))


class TestSubUnitDirtyTracking:
    def test_small_write_dirties_one_sub_unit(self):
        array = make_array()
        array.write(0, payload(1), update_parity=False)
        assert array.dirty_stripes == frozenset({0})
        assert array.dirty_sub_units(0) == frozenset({0})

    def test_write_at_unit_end_dirties_last_sub_unit(self):
        array = make_array()
        array.write(7, payload(1), update_parity=False)  # last sector of unit 0
        assert array.dirty_sub_units(0) == frozenset({3})

    def test_spanning_write_dirties_multiple_sub_units(self):
        array = make_array()
        array.write(0, payload(8), update_parity=False)  # a whole unit
        assert array.dirty_sub_units(0) == frozenset({0, 1, 2, 3})

    def test_parity_lag_scales_with_sub_units(self):
        array = make_array()
        array.write(0, payload(1), update_parity=False)
        one_slice = array.parity_lag_bytes
        array.write(2, payload(1), update_parity=False)  # second sub-unit
        assert array.parity_lag_bytes == 2 * one_slice


class TestSubUnitScrub:
    def test_scrub_sub_unit_clears_only_its_slice(self):
        array = make_array()
        array.write(0, payload(8), update_parity=False)
        array.scrub_sub_unit(0, 1)
        assert array.dirty_sub_units(0) == frozenset({0, 2, 3})
        for sub in (0, 2, 3):
            array.scrub_sub_unit(0, sub)
        assert array.dirty_stripes == frozenset()
        assert array.parity_consistent(0)

    def test_scrubbed_stripe_survives_failure(self):
        array = make_array()
        array.write(0, payload(8), update_parity=False)
        for sub in range(4):
            array.scrub_sub_unit(0, sub)
        data_disk = array.layout.data_units(0)[0].disk
        array.fail_disk(data_disk)
        assert array.read(0, 8) == payload(8)


class TestSubUnitLoss:
    def test_lost_bytes_counts_only_dirty_slices(self):
        array = make_array()
        array.write(0, payload(1), update_parity=False)  # one sub-unit dirty
        unit_bytes = array.layout.stripe_unit_sectors * SECTOR
        data_disk = array.layout.data_units(0)[0].disk
        lost = array.lost_data_bytes(data_disk)
        assert 0 < lost < unit_bytes
        assert lost == 2 * SECTOR  # ceil(8/4) = 2 sectors per slice

    def test_parity_disk_failure_loses_nothing(self):
        array = make_array()
        array.write(0, payload(1), update_parity=False)
        parity_disk = array.layout.parity_disk(0)
        assert array.lost_data_bytes(parity_disk) == 0

    def test_clean_slices_recoverable_after_failure(self):
        array = make_array()
        full = payload(8, seed=3)
        array.write(0, full)  # parity kept fresh
        array.write(0, payload(2, seed=5), update_parity=False)  # dirty sub 0
        data_disk = array.layout.data_units(0)[0].disk
        recovered = array.reconstruct_data_unit(0, data_disk)
        # Sub-unit 0 (sectors 0-1) zero-filled, rest reconstructed.
        assert bytes(recovered[: 2 * SECTOR]) == b"\x00" * 2 * SECTOR
        assert bytes(recovered[2 * SECTOR :]) == full[2 * SECTOR :]

    def test_dirty_read_after_failure_raises(self):
        array = make_array()
        array.write(0, payload(2), update_parity=False)
        data_disk = array.layout.data_units(0)[0].disk
        array.fail_disk(data_disk)
        with pytest.raises(DataLostError):
            array.read(0, 2)


class TestDegradedWrites:
    def test_degraded_write_refreshes_parity_and_clears_dirt(self):
        array = make_array()
        array.write(0, payload(8, seed=2), update_parity=False)
        failed = array.layout.data_units(0)[1].disk  # survivor holds our data
        array.fail_disk(failed)
        # A degraded full-stripe write reconstructs the failed unit and
        # writes fresh parity: the stripe ends consistent.
        stripe_sectors = array.layout.stripe_data_sectors
        array.write_degraded(0, payload(stripe_sectors, seed=9), failed)
        assert array.dirty_sub_units(0) == frozenset()

    def test_degraded_write_to_parity_failed_stripe_keeps_dirt(self):
        array = make_array()
        array.write(0, payload(2), update_parity=False)
        parity_disk = array.layout.parity_disk(0)
        array.fail_disk(parity_disk)
        array.write_degraded(0, payload(2, seed=4), parity_disk)
        # No parity to refresh: staleness bookkeeping is untouched.
        assert array.dirty_sub_units(0) == frozenset({0})
