"""Tests for the left-symmetric RAID 5 layout."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import Raid5Layout, UnitKind


def small_layout(ndisks=5, unit=4, disk_sectors=40):
    return Raid5Layout(ndisks=ndisks, stripe_unit_sectors=unit, disk_sectors=disk_sectors)


class TestValidation:
    def test_needs_three_disks(self):
        with pytest.raises(ValueError):
            Raid5Layout(ndisks=2, stripe_unit_sectors=4, disk_sectors=40)

    def test_needs_positive_unit(self):
        with pytest.raises(ValueError):
            Raid5Layout(ndisks=5, stripe_unit_sectors=0, disk_sectors=40)

    def test_disk_fits_one_unit(self):
        with pytest.raises(ValueError):
            Raid5Layout(ndisks=5, stripe_unit_sectors=64, disk_sectors=40)


class TestStructure:
    def test_counts(self):
        layout = small_layout()
        assert layout.data_units_per_stripe == 4
        assert layout.stripe_data_sectors == 16
        assert layout.nstripes == 10
        assert layout.total_data_sectors == 160

    def test_parity_rotates_left(self):
        layout = small_layout()
        assert [layout.parity_disk(s) for s in range(6)] == [4, 3, 2, 1, 0, 4]

    def test_left_symmetric_data_placement(self):
        """Stripe 1: parity on disk 3, data D0..D3 on disks 4,0,1,2."""
        layout = small_layout()
        assert [layout.data_disk(1, i) for i in range(4)] == [4, 0, 1, 2]

    def test_sequential_units_hit_distinct_disks(self):
        """Left-symmetric: consecutive data units never collide on a disk
        within one stripe, and parity is on none of them."""
        layout = small_layout()
        for stripe in range(layout.nstripes):
            disks = [layout.data_disk(stripe, i) for i in range(4)]
            assert len(set(disks)) == 4
            assert layout.parity_disk(stripe) not in disks

    def test_parity_unit_lba(self):
        layout = small_layout()
        unit = layout.parity_unit(3)
        assert unit.kind is UnitKind.PARITY
        assert unit.disk_lba == 12  # stripe 3 * 4 sectors/unit


class TestMapping:
    def test_locate_first_sector(self):
        layout = small_layout()
        unit = layout.locate(0)
        assert (unit.stripe, unit.unit_index, unit.disk, unit.disk_lba) == (0, 0, 0, 0)

    def test_locate_crosses_stripes(self):
        layout = small_layout()
        unit = layout.locate(16)  # first sector of stripe 1 = data unit 0 on disk 4
        assert (unit.stripe, unit.unit_index, unit.disk) == (1, 0, 4)

    def test_map_extent_single_unit(self):
        layout = small_layout()
        runs = layout.map_extent(1, 2)
        assert len(runs) == 1
        assert (runs[0].disk, runs[0].disk_lba, runs[0].nsectors) == (0, 1, 2)

    def test_map_extent_crossing_units(self):
        layout = small_layout()
        runs = layout.map_extent(2, 4)  # last 2 sectors of unit 0, first 2 of unit 1
        assert [(r.disk, r.disk_lba, r.nsectors) for r in runs] == [(0, 2, 2), (1, 0, 2)]

    def test_map_extent_crossing_stripes(self):
        layout = small_layout()
        runs = layout.map_extent(14, 4)  # end of stripe 0, start of stripe 1
        assert [r.stripe for r in runs] == [0, 1]
        assert runs[1].disk == 4  # stripe 1 data unit 0 is on disk 4

    def test_stripes_touched(self):
        layout = small_layout()
        assert list(layout.stripes_touched(0, 1)) == [0]
        assert list(layout.stripes_touched(14, 4)) == [0, 1]
        assert list(layout.stripes_touched(0, 160)) == list(range(10))

    def test_out_of_range(self):
        layout = small_layout()
        with pytest.raises(ValueError):
            layout.locate(160)
        with pytest.raises(ValueError):
            layout.map_extent(159, 2)


class TestInverse:
    def test_logical_of_parity(self):
        layout = small_layout()
        unit = layout.logical_of(4, 0)  # stripe 0 parity lives on disk 4
        assert unit.kind is UnitKind.PARITY
        assert unit.stripe == 0

    def test_logical_of_data(self):
        layout = small_layout()
        unit = layout.logical_of(0, 0)
        assert unit.kind is UnitKind.DATA
        assert unit.unit_index == 0

    @given(
        stripe=st.integers(min_value=0, max_value=9),
        unit_index=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_forward_inverse_consistency(self, stripe, unit_index):
        layout = small_layout()
        disk = layout.data_disk(stripe, unit_index)
        unit = layout.logical_of(disk, stripe * layout.stripe_unit_sectors)
        assert unit.kind is UnitKind.DATA
        assert unit.stripe == stripe
        assert unit.unit_index == unit_index


class TestProperties:
    @given(
        logical=st.integers(min_value=0),
        nsectors=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_extent_runs_cover_exactly(self, logical, nsectors):
        layout = small_layout(ndisks=5, unit=4, disk_sectors=400)
        logical = logical % (layout.total_data_sectors - 64)
        runs = layout.map_extent(logical, nsectors)
        assert sum(r.nsectors for r in runs) == nsectors
        # Logical coverage is contiguous and ordered.
        position = logical
        for run in runs:
            assert run.logical_sector == position
            position += run.nsectors

    @given(logical=st.integers(min_value=0))
    @settings(max_examples=200, deadline=None)
    def test_every_sector_lands_on_nonparity_disk(self, logical):
        layout = small_layout(ndisks=5, unit=4, disk_sectors=400)
        logical = logical % layout.total_data_sectors
        unit = layout.locate(logical)
        assert unit.disk != layout.parity_disk(unit.stripe)

    @given(ndisks=st.integers(min_value=3, max_value=12))
    @settings(max_examples=10, deadline=None)
    def test_parity_balanced_across_disks(self, ndisks):
        """Over ndisks consecutive stripes, every disk holds parity once."""
        layout = Raid5Layout(ndisks=ndisks, stripe_unit_sectors=4, disk_sectors=4 * ndisks * 3)
        parity_disks = [layout.parity_disk(s) for s in range(ndisks)]
        assert sorted(parity_disks) == list(range(ndisks))
