"""Tests for the RAID 0 and RAID 6 layouts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import Raid0Layout, Raid6Layout, UnitKind


class TestRaid0:
    def test_round_robin_striping(self):
        layout = Raid0Layout(ndisks=4, stripe_unit_sectors=4, disk_sectors=40)
        assert layout.locate(0).disk == 0
        assert layout.locate(4).disk == 1
        assert layout.locate(8).disk == 2
        assert layout.locate(12).disk == 3
        assert layout.locate(16).disk == 0
        assert layout.locate(16).stripe == 1

    def test_all_capacity_is_data(self):
        layout = Raid0Layout(ndisks=4, stripe_unit_sectors=4, disk_sectors=40)
        assert layout.total_data_sectors == 4 * 40

    def test_extent_covers(self):
        layout = Raid0Layout(ndisks=4, stripe_unit_sectors=4, disk_sectors=40)
        runs = layout.map_extent(2, 8)
        assert sum(r.nsectors for r in runs) == 8
        assert [r.disk for r in runs] == [0, 1, 2]

    @given(logical=st.integers(min_value=0), nsectors=st.integers(min_value=1, max_value=32))
    @settings(max_examples=150, deadline=None)
    def test_runs_partition_extent(self, logical, nsectors):
        layout = Raid0Layout(ndisks=3, stripe_unit_sectors=4, disk_sectors=400)
        logical = logical % (layout.total_data_sectors - 32)
        runs = layout.map_extent(logical, nsectors)
        position = logical
        for run in runs:
            assert run.logical_sector == position
            position += run.nsectors
        assert position == logical + nsectors


class TestRaid6:
    def test_needs_four_disks(self):
        with pytest.raises(ValueError):
            Raid6Layout(ndisks=3, stripe_unit_sectors=4, disk_sectors=40)

    def test_two_parity_units_per_stripe(self):
        layout = Raid6Layout(ndisks=6, stripe_unit_sectors=4, disk_sectors=40)
        assert layout.data_units_per_stripe == 4
        p = layout.parity_unit(0)
        q = layout.parity_q_unit(0)
        assert p.kind is UnitKind.PARITY
        assert q.kind is UnitKind.PARITY_Q
        assert p.disk != q.disk

    def test_parity_rotates(self):
        layout = Raid6Layout(ndisks=6, stripe_unit_sectors=4, disk_sectors=48)
        p_disks = [layout.parity_disk(s) for s in range(6)]
        assert sorted(p_disks) == list(range(6))

    @given(stripe=st.integers(min_value=0, max_value=9))
    @settings(max_examples=60, deadline=None)
    def test_data_avoids_both_parity_disks(self, stripe):
        layout = Raid6Layout(ndisks=6, stripe_unit_sectors=4, disk_sectors=40)
        p = layout.parity_disk(stripe)
        q = layout.parity_q_disk(stripe)
        data_disks = [layout.data_disk(stripe, i) for i in range(layout.data_units_per_stripe)]
        assert p not in data_disks
        assert q not in data_disks
        assert len(set(data_disks)) == layout.data_units_per_stripe

    @given(logical=st.integers(min_value=0), nsectors=st.integers(min_value=1, max_value=32))
    @settings(max_examples=100, deadline=None)
    def test_runs_partition_extent(self, logical, nsectors):
        layout = Raid6Layout(ndisks=6, stripe_unit_sectors=4, disk_sectors=400)
        logical = logical % (layout.total_data_sectors - 32)
        runs = layout.map_extent(logical, nsectors)
        assert sum(r.nsectors for r in runs) == nsectors
