"""Property tests for the RAID 5 extent mapper.

The fast-path work leans on ``map_extent`` caching and on the controller
re-deriving per-stripe groupings from its runs, so these pin the mapper's
contract over the whole parameter space rather than a few worked examples:
runs tile the logical extent exactly, never overlap on disk, and agree
with the inverse map ``logical_of``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import Raid5Layout
from repro.layout.base import UnitKind


@st.composite
def layout_and_extent(draw):
    ndisks = draw(st.integers(min_value=3, max_value=8))
    unit = draw(st.integers(min_value=1, max_value=64))
    nstripes = draw(st.integers(min_value=1, max_value=40))
    slack = draw(st.integers(min_value=0, max_value=unit - 1))
    layout = Raid5Layout(ndisks, unit, nstripes * unit + slack)
    total = layout.total_data_sectors
    start = draw(st.integers(min_value=0, max_value=total - 1))
    nsectors = draw(st.integers(min_value=1, max_value=total - start))
    return layout, start, nsectors


@settings(max_examples=300, deadline=None)
@given(layout_and_extent())
def test_runs_tile_the_extent_exactly(case):
    layout, start, nsectors = case
    runs = layout.map_extent(start, nsectors)
    assert sum(run.nsectors for run in runs) == nsectors
    position = start
    for run in runs:
        assert run.logical_sector == position
        assert run.nsectors >= 1
        # A run never crosses a stripe-unit boundary.
        offset_in_unit = run.disk_lba - run.stripe * layout.stripe_unit_sectors
        assert 0 <= offset_in_unit
        assert offset_in_unit + run.nsectors <= layout.stripe_unit_sectors
        position += run.nsectors
    assert position == start + nsectors


@settings(max_examples=300, deadline=None)
@given(layout_and_extent())
def test_runs_are_disjoint_on_disk(case):
    layout, start, nsectors = case
    runs = layout.map_extent(start, nsectors)
    extents = sorted((run.disk, run.disk_lba, run.disk_lba + run.nsectors) for run in runs)
    for (disk_a, _lo_a, hi_a), (disk_b, lo_b, _hi_b) in zip(extents, extents[1:]):
        assert disk_a != disk_b or hi_a <= lo_b


@settings(max_examples=300, deadline=None)
@given(layout_and_extent())
def test_runs_round_trip_through_logical_of(case):
    layout, start, nsectors = case
    unit_sectors = layout.stripe_unit_sectors
    for run in layout.map_extent(start, nsectors):
        unit = layout.logical_of(run.disk, run.disk_lba)
        assert unit.kind is UnitKind.DATA
        assert unit.stripe == run.stripe
        assert unit.unit_index == run.unit_index
        assert unit.disk == run.disk
        offset_in_unit = run.disk_lba - unit.disk_lba
        logical = layout.logical_sector_of_unit(run.stripe, run.unit_index) + offset_in_unit
        assert logical == run.logical_sector
        # And sector-level agreement with the forward map.
        assert layout.locate(run.logical_sector).disk == run.disk
