"""Tests for mirrored/declustered layouts and the organization registry."""

import pytest

from repro.layout import (
    DEFAULT_ORGANIZATION,
    ORGANIZATIONS,
    ArrayOrganization,
    DeclusteredRaid5Layout,
    Raid1Layout,
    Raid10Layout,
    Raid15Layout,
    Raid5Layout,
    UnitKind,
    get_organization,
)

UNIT = 8
DISK = 1024


class TestRegistry:
    def test_expected_schemes_present(self):
        assert set(ORGANIZATIONS) == {"raid5", "raid5d", "raid1", "raid10", "raid15"}
        assert DEFAULT_ORGANIZATION == "raid5"

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="raid10"):
            get_organization("raid7")

    def test_idempotent_on_instances(self):
        org = get_organization("raid10")
        assert get_organization(org) is org

    def test_layout_factories(self):
        built = {
            name: org.build_layout(
                org.exact_disks or max(org.min_disks, 6), UNIT, DISK
            )
            for name, org in ORGANIZATIONS.items()
        }
        assert type(built["raid5"]) is Raid5Layout
        assert type(built["raid5d"]) is DeclusteredRaid5Layout
        assert type(built["raid1"]) is Raid1Layout
        assert type(built["raid10"]) is Raid10Layout
        assert type(built["raid15"]) is Raid15Layout

    @pytest.mark.parametrize(
        "name,bad_ndisks",
        [("raid1", 4), ("raid10", 5), ("raid15", 4), ("raid5", 2), ("raid5d", 3)],
    )
    def test_validate_rejects_bad_geometry(self, name, bad_ndisks):
        with pytest.raises(ValueError):
            get_organization(name).validate(bad_ndisks)


class TestFailureSemantics:
    def test_raid5_family_single_failure_survivable(self):
        for name in ("raid5", "raid5d"):
            org = get_organization(name)
            assert org.can_absorb([0])
            assert org.loses_data([0, 1])

    def test_raid1_pair_death_fatal(self):
        org = get_organization("raid1")
        assert org.can_absorb([0])
        assert org.can_absorb([1])
        assert org.loses_data([0, 1])

    def test_raid10_survives_one_per_pair(self):
        org = get_organization("raid10")
        assert org.can_absorb([0, 2, 5])  # one disk of three different pairs
        assert org.loses_data([2, 3])  # both disks of pair 1

    def test_raid15_survives_a_whole_pair(self):
        org = get_organization("raid15")
        assert org.can_absorb([0, 1])  # parity reconstructs the dead pair
        assert org.can_absorb([0, 1, 4])  # plus a lone disk elsewhere
        assert org.loses_data([0, 1, 2, 3])  # two dead pairs


class TestRaid10Layout:
    def test_geometry(self):
        layout = Raid10Layout(6, UNIT, DISK)
        assert layout.npairs == 3
        assert layout.data_units_per_stripe == 3
        assert layout.mirrored and not layout.has_parity
        assert layout.total_data_sectors == layout.nstripes * 3 * UNIT
        assert layout.mirror_disk(0) == 1 and layout.mirror_disk(1) == 0

    def test_primary_and_mirror_placement(self):
        layout = Raid10Layout(4, UNIT, DISK)
        for stripe in (0, 1, 7):
            for unit in layout.data_units(stripe):
                assert unit.disk % 2 == 0
                assert unit.disk_lba == stripe * UNIT
                mirror = layout.mirror_unit(stripe, unit.unit_index)
                assert mirror.disk == unit.disk + 1
                assert mirror.disk_lba == unit.disk_lba
                assert mirror.kind is UnitKind.MIRROR

    def test_map_extent_round_trips(self):
        layout = Raid10Layout(6, UNIT, DISK)
        runs = layout.map_extent(0, 5 * UNIT)
        assert sum(run.nsectors for run in runs) == 5 * UNIT
        for run in runs:
            unit = layout.logical_of(run.disk, run.disk_lba)
            assert unit.stripe == run.stripe
            assert unit.kind is UnitKind.DATA

    def test_raid1_is_single_pair(self):
        layout = Raid1Layout(2, UNIT, DISK)
        assert layout.npairs == 1
        assert layout.data_units_per_stripe == 1
        with pytest.raises(ValueError):
            Raid1Layout(4, UNIT, DISK)


class TestRaid15Layout:
    def test_parity_rotates_over_pairs(self):
        layout = Raid15Layout(6, UNIT, DISK)
        assert layout.data_units_per_stripe == layout.npairs - 1
        pairs = [layout.parity_pair(stripe) for stripe in range(layout.npairs)]
        assert sorted(pairs) == list(range(layout.npairs))
        for stripe in range(6):
            parity = layout.parity_unit(stripe)
            assert parity.disk == 2 * layout.parity_pair(stripe)
            assert parity.disk_lba == stripe * UNIT
            data_pairs = {unit.disk // 2 for unit in layout.data_units(stripe)}
            assert layout.parity_pair(stripe) not in data_pairs

    def test_every_unit_mirrored_within_pair(self):
        layout = Raid15Layout(6, UNIT, DISK)
        for stripe in range(4):
            for unit in layout.data_units(stripe):
                mirror = layout.mirror_unit(stripe, unit.unit_index)
                assert mirror.disk == layout.mirror_disk(unit.disk)
                assert mirror.disk_lba == unit.disk_lba


class TestDeclusteredLayout:
    def test_complete_block_design(self):
        layout = DeclusteredRaid5Layout(6, UNIT, DISK, stripe_width=4)
        assert layout.period == 15  # C(6, 4)
        assert layout.units_per_disk_per_period == 10  # C(5, 3)
        seen = set()
        for stripe in range(layout.period):
            members = layout.stripe_members(stripe)
            assert len(members) == 4
            seen.add(members)
        assert len(seen) == layout.period  # every 4-subset exactly once

    def test_parity_spread_over_members(self):
        layout = DeclusteredRaid5Layout(6, UNIT, DISK, stripe_width=4)
        counts = {disk: 0 for disk in range(6)}
        for stripe in range(layout.period * 4):
            counts[layout.parity_disk(stripe)] += 1
        # Declustering's point: no single parity disk; every member
        # carries a share of the parity units.
        assert all(count > 0 for count in counts.values())
        assert max(counts.values()) < layout.period * 4 / 2

    def test_unit_lba_logical_of_inverse(self):
        layout = DeclusteredRaid5Layout(5, UNIT, DISK)
        for stripe in range(min(layout.nstripes, 2 * layout.period)):
            for disk in layout.stripe_members(stripe):
                lba = layout.unit_lba(stripe, disk)
                unit = layout.logical_of(disk, lba)
                assert unit.stripe == stripe
                assert unit.disk == disk
        missing = next(
            disk for disk in range(5) if disk not in layout.stripe_members(0)
        )
        with pytest.raises(ValueError, match="not a member"):
            layout.unit_lba(0, missing)

    def test_disk_sectors_used_bounds_every_unit(self):
        layout = DeclusteredRaid5Layout(6, UNIT, DISK, stripe_width=4)
        used = layout.disk_sectors_used
        assert used == (layout.nstripes // layout.period) * 10 * UNIT
        assert used <= DISK
        top = {}
        for stripe in range(layout.nstripes):
            for disk in layout.stripe_members(stripe):
                lba = layout.unit_lba(stripe, disk)
                top[disk] = max(top.get(disk, 0), lba + UNIT)
        assert all(value == used for value in top.values())

    def test_map_extent_round_trips(self):
        layout = DeclusteredRaid5Layout(5, UNIT, DISK)
        runs = layout.map_extent(3, 7 * UNIT)
        assert sum(run.nsectors for run in runs) == 7 * UNIT
        for run in runs:
            unit = layout.logical_of(run.disk, run.disk_lba)
            assert unit.stripe == run.stripe
            assert unit.kind is UnitKind.DATA
            assert run.disk != layout.parity_disk(run.stripe)

    def test_rebuild_membership_is_partial(self):
        """A failed disk touches only its stripes — the declustering win."""
        layout = DeclusteredRaid5Layout(6, UNIT, DISK, stripe_width=4)
        member_stripes = sum(
            1 for stripe in range(layout.nstripes) if 0 in layout.stripe_members(stripe)
        )
        assert 0 < member_stripes < layout.nstripes
        assert member_stripes / layout.nstripes == pytest.approx(4 / 6)


class TestOrganizationIsFrozen:
    def test_immutable(self):
        org = get_organization("raid5")
        assert isinstance(org, ArrayOrganization)
        with pytest.raises(dataclasses_frozen_error()):
            org.name = "other"


def dataclasses_frozen_error():
    import dataclasses

    return dataclasses.FrozenInstanceError
