"""Tests for trace replay, experiments, sweeps, and table rendering."""

import pytest

from repro.array import toy_array
from repro.disk import IoKind, toy_disk
from repro.harness import (
    ExperimentResult,
    format_quantity,
    format_table,
    gather,
    policy_ladder,
    replay_trace,
    run_experiment,
    run_policy_grid,
    tradeoff_curve,
)
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy
from repro.sim import Simulator
from repro.traces import Trace, TraceRecord


def tiny_trace(n=20, gap=0.05, write_every=2, duration=None):
    records = []
    for i in range(n):
        records.append(
            TraceRecord(
                time_s=i * gap,
                kind=IoKind.WRITE if i % write_every == 0 else IoKind.READ,
                offset_sectors=(i * 16) % 1000,
                nsectors=8,
            )
        )
    return Trace("tiny", records, duration_s=duration if duration is not None else n * gap + 1.0)


class TestGather:
    def test_empty(self):
        sim = Simulator()
        done = gather(sim, [])
        assert done.triggered
        assert done.value == []

    def test_collects_successes_and_failures_in_order(self):
        sim = Simulator()
        ok = sim.timeout(1.0, value="fine")
        bad = sim.event()
        bad.fail(ValueError("broken"))
        done = gather(sim, [ok, bad])
        results = sim.run_until_triggered(done)
        assert results[0] == (True, "fine")
        assert results[1][0] is False
        assert isinstance(results[1][1], ValueError)


class TestReplay:
    def test_replays_all_requests(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        outcome = replay_trace(sim, array, tiny_trace())
        assert len(outcome.requests) == 20
        assert len(outcome.completed) == 20
        assert not outcome.failures
        assert array.stats.completed == 20

    def test_open_loop_timing(self):
        """Arrivals follow trace timestamps, not completions."""
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        trace = tiny_trace(n=10, gap=0.5)
        outcome = replay_trace(sim, array, trace)
        submit_times = [request.submit_time for request in outcome.requests]
        assert submit_times == pytest.approx([i * 0.5 for i in range(10)])

    def test_horizon_covers_trace_duration(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        trace = tiny_trace(n=4, gap=0.01, duration=30.0)
        outcome = replay_trace(sim, array, trace)
        assert outcome.horizon_s == pytest.approx(30.0)
        assert sim.now == pytest.approx(30.0)

    def test_finalizes_lag_tracker(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        replay_trace(sim, array, tiny_trace())
        # Tracker closed: further updates rejected by the tracker itself.
        assert array.lag_tracker.total_time > 0


class TestRunExperiment:
    def test_returns_complete_result(self):
        result = run_experiment(
            "hplajw",
            BaselineAfraidPolicy(),
            duration_s=8.0,
            seed=3,
            ndisks=5,
            stripe_unit_sectors=8,
            disk_factory=toy_disk,
        )
        assert isinstance(result, ExperimentResult)
        assert result.workload == "hplajw"
        assert result.policy == "afraid"
        assert result.nrequests == result.reads + result.writes
        assert result.io_time.mean > 0
        assert 0.0 <= result.unprotected_fraction <= 1.0
        assert result.mttdl_disk_h > 0
        assert result.mttdl_overall_h <= 2.0e6  # capped by support

    def test_accepts_prebuilt_trace(self):
        result = run_experiment(
            tiny_trace(),
            BaselineAfraidPolicy(),
            ndisks=5,
            stripe_unit_sectors=8,
            disk_factory=toy_disk,
        )
        assert result.workload == "tiny"
        assert result.nrequests == 20

    def test_raid5_measures_zero_exposure(self):
        result = run_experiment(
            tiny_trace(),
            AlwaysRaid5Policy(),
            disk_factory=toy_disk,
            stripe_unit_sectors=8,
        )
        assert result.unprotected_fraction == 0.0
        assert result.mdlr_unprotected_bytes_per_h == 0.0
        assert result.mttdl_disk_h == pytest.approx(4.17e9, rel=0.05)

    def test_afraid_faster_than_raid5_on_write_trace(self):
        trace = tiny_trace(n=30, gap=0.02, write_every=1)
        afraid = run_experiment(trace, BaselineAfraidPolicy(), disk_factory=toy_disk, stripe_unit_sectors=8)
        trace2 = tiny_trace(n=30, gap=0.02, write_every=1)
        raid5 = run_experiment(trace2, AlwaysRaid5Policy(), disk_factory=toy_disk, stripe_unit_sectors=8)
        assert afraid.speedup_over(raid5) > 1.3
        assert raid5.availability_ratio_to(afraid) >= 1.0


class TestSweeps:
    def test_ladder_structure(self):
        ladder = policy_ladder(targets=(1e9, 1e7))
        labels = [entry.label for entry in ladder]
        assert labels[0] == "raid5"
        assert labels[-1] == "raid0"
        assert labels[-2] == "afraid"
        assert "MTTDL_1e+09" in labels
        # Tighter targets come first.
        assert labels.index("MTTDL_1e+09") < labels.index("MTTDL_1e+07")

    def test_grid_and_tradeoff(self):
        ladder = policy_ladder(targets=(1e8,))
        grid = run_policy_grid(
            ["hplajw"],
            ladder,
            duration_s=6.0,
            seed=2,
            disk_factory=toy_disk,
            stripe_unit_sectors=8,
        )
        assert len(grid) == len(ladder)
        points = tradeoff_curve(grid, ["hplajw"], [entry.label for entry in ladder])
        by_label = {point.label: point for point in points}
        assert by_label["raid5"].relative_performance == pytest.approx(1.0)
        assert by_label["raid5"].relative_availability == pytest.approx(1.0)
        assert by_label["afraid"].relative_performance >= 1.0
        assert by_label["afraid"].relative_availability <= 1.0


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[2].startswith("-")
        assert lines[3].startswith("a")

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_format_quantity(self):
        assert format_quantity(float("inf")) == "inf"
        assert format_quantity(0) == "0"
        assert format_quantity(4.17e9, " h") == "4.2e+09 h"
        assert format_quantity(42.5) == "42.5"
