"""Tests for sweep construction and availability derivation internals."""

import pytest

from repro.availability import CONSERVATIVE_SUPPORT, TABLE_1, raid5_mttdl_catastrophic
from repro.harness.experiment import derive_availability
from repro.harness.sweeps import DEFAULT_MTTDL_TARGETS, TradeoffPoint, policy_ladder, tradeoff_curve
from repro.policy import MttdlTargetPolicy


class TestDeriveAvailability:
    def test_zero_exposure_reduces_to_raid5(self):
        mttdl, mdlr_unprot, mdlr_disk, mttdl_overall, mdlr_overall = derive_availability(
            ndisks=5, unprotected_fraction=0.0, mean_parity_lag_bytes=0.0, params=TABLE_1
        )
        assert mttdl == pytest.approx(
            raid5_mttdl_catastrophic(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h)
        )
        assert mdlr_unprot == 0.0
        assert mdlr_disk == pytest.approx(0.768, rel=0.05)  # eq.(3) only
        assert mttdl_overall == pytest.approx(CONSERVATIVE_SUPPORT.mttdl_h, rel=0.01)

    def test_full_exposure_is_raid0(self):
        mttdl, *_rest = derive_availability(
            ndisks=5, unprotected_fraction=1.0, mean_parity_lag_bytes=1e6, params=TABLE_1
        )
        assert mttdl == pytest.approx(TABLE_1.mttf_disk_h / 5, rel=1e-6)

    def test_overall_never_exceeds_support(self):
        for fraction in (0.0, 0.01, 0.3, 1.0):
            *_rest, mttdl_overall, _mdlr = derive_availability(
                ndisks=5, unprotected_fraction=fraction, mean_parity_lag_bytes=0.0, params=TABLE_1
            )
            assert mttdl_overall <= CONSERVATIVE_SUPPORT.mttdl_h

    def test_mdlr_overall_includes_support(self):
        *_rest, mdlr_overall = derive_availability(
            ndisks=5, unprotected_fraction=0.1, mean_parity_lag_bytes=0.0, params=TABLE_1
        )
        assert mdlr_overall >= CONSERVATIVE_SUPPORT.mdlr(5, TABLE_1.disk_bytes)


class TestPolicyLadder:
    def test_default_targets_descend(self):
        assert list(DEFAULT_MTTDL_TARGETS) == sorted(DEFAULT_MTTDL_TARGETS, reverse=True)

    def test_factories_produce_fresh_policies(self):
        ladder = policy_ladder(targets=(1e7,))
        entry = next(e for e in ladder if e.label.startswith("MTTDL"))
        first, second = entry.factory(), entry.factory()
        assert first is not second
        assert isinstance(first, MttdlTargetPolicy)
        assert first.target_h == 1e7

    def test_endpoints_optional(self):
        ladder = policy_ladder(targets=(1e7,), include_raid5=False, include_raid0=False)
        labels = [entry.label for entry in ladder]
        assert "raid5" not in labels
        assert "raid0" not in labels
        assert labels[-1] == "afraid"


class StubResult:
    def __init__(self, mean_io, mttdl_overall, mttdl_disk=1e6, count=100):
        class IoTime:
            def __init__(self, mean, count):
                self.mean = mean
                self.count = count

        self.io_time = IoTime(mean_io, count)
        self.mttdl_overall_h = mttdl_overall
        self.mttdl_disk_h = mttdl_disk


class TestTradeoffCurve:
    def test_normalises_to_baseline(self):
        grid = {
            ("w", "raid5"): StubResult(0.100, 2.0e6),
            ("w", "afraid"): StubResult(0.025, 1.0e6),
        }
        points = tradeoff_curve(grid, ["w"], ["raid5", "afraid"])
        by_label = {point.label: point for point in points}
        assert by_label["raid5"] == TradeoffPoint("raid5", 1.0, 1.0)
        assert by_label["afraid"].relative_performance == pytest.approx(4.0)
        assert by_label["afraid"].relative_availability == pytest.approx(0.5)

    def test_geometric_mean_across_workloads(self):
        grid = {
            ("a", "raid5"): StubResult(0.1, 2.0e6),
            ("a", "x"): StubResult(0.1, 2.0e6),  # 1x on workload a
            ("b", "raid5"): StubResult(0.1, 2.0e6),
            ("b", "x"): StubResult(0.025, 2.0e6),  # 4x on workload b
        }
        points = tradeoff_curve(grid, ["a", "b"], ["x"])
        assert points[0].relative_performance == pytest.approx(2.0)  # sqrt(1*4)

    def test_empty_workloads_rejected(self):
        with pytest.raises(ValueError, match="at least one workload"):
            tradeoff_curve({}, [], ["raid5"])

    def test_empty_labels_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            tradeoff_curve({}, ["w"], [])

    def test_empty_cell_named_in_error(self):
        grid = {
            ("w", "raid5"): StubResult(0.100, 2.0e6),
            ("w", "afraid"): StubResult(0.0, 1.0e6, count=0),
        }
        with pytest.raises(ValueError, match="afraid.*completed no requests"):
            tradeoff_curve(grid, ["w"], ["raid5", "afraid"])

    def test_empty_baseline_named_in_error(self):
        grid = {
            ("w", "raid5"): StubResult(0.0, 2.0e6, count=0),
            ("w", "afraid"): StubResult(0.025, 1.0e6),
        }
        with pytest.raises(ValueError, match="completed no requests"):
            tradeoff_curve(grid, ["w"], ["afraid"])


class TestSpeedupGuard:
    @staticmethod
    def result(io_times):
        from repro.availability import TABLE_1
        from repro.harness.experiment import ExperimentResult
        from repro.metrics import Summary

        return ExperimentResult(
            workload="w",
            policy="p",
            ndisks=5,
            nrequests=len(io_times),
            reads=0,
            writes=len(io_times),
            io_time=Summary.of(io_times),
            horizon_s=1.0,
            stripes_scrubbed=0,
            dirty_at_end=0,
            unprotected_fraction=0.0,
            mean_parity_lag_bytes=0.0,
            peak_parity_lag_bytes=0.0,
            params=TABLE_1,
            mttdl_disk_h=1e6,
            mdlr_unprotected_bytes_per_h=0.0,
            mdlr_disk_bytes_per_h=0.0,
            mttdl_overall_h=1e6,
            mdlr_overall_bytes_per_h=0.0,
        )

    def test_speedup_over_empty_run_rejected(self):
        full = self.result([0.01, 0.02])
        empty = self.result([])
        with pytest.raises(ValueError, match="completed no requests"):
            full.speedup_over(empty)
        with pytest.raises(ValueError, match="completed no requests"):
            empty.speedup_over(full)

    def test_speedup_between_real_runs(self):
        fast = self.result([0.01, 0.01])
        slow = self.result([0.04, 0.04])
        assert fast.speedup_over(slow) == pytest.approx(4.0)


class TestOrganizationGrid:
    @pytest.fixture(scope="class")
    def grid(self):
        from repro.harness.sweeps import run_organization_grid

        return run_organization_grid(
            ["ATT"],
            organizations=("raid5", "raid1", "raid10", "raid5d"),
            ndisks=6,
            duration_s=5.0,
            seed=3,
        )

    def test_keys_are_workload_organization_pairs(self, grid):
        assert set(grid) == {
            ("ATT", "raid5"),
            ("ATT", "raid1"),
            ("ATT", "raid10"),
            ("ATT", "raid5d"),
        }

    def test_exact_disk_organizations_override_ndisks(self, grid):
        assert grid[("ATT", "raid1")].ndisks == 2
        assert grid[("ATT", "raid10")].ndisks == 6

    def test_tradeoff_curve_reduces_grid(self, grid):
        from repro.harness.sweeps import organization_tradeoff_curve

        points = organization_tradeoff_curve(
            grid, ["ATT"], organizations=("raid5", "raid1", "raid10", "raid5d")
        )
        assert [point.label for point in points] == [
            "raid5",
            "raid1",
            "raid10",
            "raid5d",
        ]
        baseline = points[0]
        assert baseline.relative_performance == pytest.approx(1.0)
        assert baseline.relative_availability == pytest.approx(1.0)
        assert all(
            point.relative_performance > 0 and point.relative_availability > 0
            for point in points
        )
