"""Checkpointed incremental replay: equivalence, eviction, recovery.

The contract under test (repro.harness.checkpoint): resuming a replay
from *any* stored quiescent-cut prefix — or from the stored final
result — produces a `replay_digest` bit-identical to a cold replay, for
every policy × workload × shard count; a pruned, corrupted, or
version-mismatched store never silently corrupts a resume (eviction and
truncation fall back to cold, a foreign version is refused loudly).
"""

import glob
import json
import os
import pickle
import shutil

import pytest

from repro.array.factory import build_array
from repro.harness import checkpoint as checkpoint_mod
from repro.harness.checkpoint import (
    CheckpointStore,
    CheckpointVersionError,
    records_digest,
)
from repro.harness.sharding import (
    PICKLE_PROTOCOL,
    replay_digest,
    replay_trace_sharded,
    run_sharded_replay,
)
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, NeverScrubPolicy
from repro.sim import Simulator
from repro.traces import make_trace

POLICIES = {
    "afraid": BaselineAfraidPolicy,
    "raid5": AlwaysRaid5Policy,
    "raid0": NeverScrubPolicy,
}


def _replay(workload, policy, duration_s, seed=42, shards=4, scope=None):
    sim = Simulator()
    array = build_array(sim, POLICIES[policy]())
    trace = make_trace(
        workload,
        duration_s=duration_s,
        seed=seed,
        address_space_sectors=array.layout.total_data_sectors,
    )
    result = replay_trace_sharded(sim, array, trace, shards=shards, checkpoint=scope)
    return result, replay_digest(result)


def _scope(tmp_path, workload, policy, seed=42):
    store = CheckpointStore(tmp_path / "store")
    return store, store.scope(
        {"workload": workload, "policy": policy, "seed": seed, "array": "paper-default"}
    )


def _entry_files(scope, kind="*"):
    return sorted(glob.glob(os.path.join(scope.path, f"{kind}-*.ckpt")))


# -- equivalence: cold vs resume-from-every-prefix --------------------------------------


@pytest.mark.parametrize("policy", sorted(POLICIES))
@pytest.mark.parametrize("workload", ["cello-usr", "ATT"])
def test_resume_from_every_prefix_matches_cold(tmp_path, workload, policy):
    """Seed the store with each stored prefix in turn; every resume point
    (including the empty store and the full final-result hit) must
    reproduce the cold digest exactly."""
    duration = 12.0
    _, cold_digest = _replay(workload, policy, duration)

    _, scope = _scope(tmp_path, workload, policy)
    populated, digest = _replay(workload, policy, duration, scope=scope)
    assert digest == cold_digest
    assert populated.events_simulated > 0

    entries = _entry_files(scope)
    cuts = [path for path in entries if os.path.basename(path).startswith("cut-")]
    # Replay once per prefix depth: store holds exactly the first k cuts.
    for k in range(len(cuts) + 1):
        prefix_dir = tmp_path / f"prefix-{k}"
        prefix_scope_path = prefix_dir / "store" / os.path.basename(scope.path)
        os.makedirs(prefix_scope_path)
        for path in cuts[:k]:
            shutil.copy2(path, prefix_scope_path)
        store = CheckpointStore(prefix_dir / "store")
        prefix_scope = store.scope(
            {"workload": workload, "policy": policy, "seed": 42, "array": "paper-default"}
        )
        assert prefix_scope.path == str(prefix_scope_path)
        resumed, resumed_digest = _replay(workload, policy, duration, scope=prefix_scope)
        assert resumed_digest == cold_digest, f"prefix depth {k} diverged"
        if k:
            assert resumed.events_simulated <= populated.events_simulated

    # Full store: the final entry answers without simulating at all.
    warm, warm_digest = _replay(workload, policy, duration, scope=scope)
    assert warm_digest == cold_digest
    assert warm.events_simulated == 0


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_cold_vs_resumed_across_shard_counts(tmp_path, shards):
    _, cold_digest = _replay("cello-usr", "afraid", 12.0, shards=shards)
    _, scope = _scope(tmp_path, "cello-usr", "afraid")
    _, first = _replay("cello-usr", "afraid", 12.0, shards=shards, scope=scope)
    resumed, second = _replay("cello-usr", "afraid", 12.0, shards=shards, scope=scope)
    assert first == cold_digest
    assert second == cold_digest
    assert resumed.events_simulated == 0


def test_duration_extension_resumes_from_cuts(tmp_path):
    """Extending --duration pays only the suffix: the longer trace's
    replay resumes from the 12 s run's deepest cut, and its digest equals
    a cold 20 s replay's."""
    _, scope = _scope(tmp_path, "cello-usr", "afraid")
    _replay("cello-usr", "afraid", 12.0, scope=scope)
    _, cold_digest = _replay("cello-usr", "afraid", 20.0)
    extended, digest = _replay("cello-usr", "afraid", 20.0, scope=scope)
    cold, _ = _replay("cello-usr", "afraid", 20.0)
    assert digest == cold_digest
    assert 0 < extended.events_simulated < cold.events_simulated


def test_run_sharded_replay_checkpoint_round_trip(tmp_path):
    store_dir = str(tmp_path / "store")
    cold, cold_digest = run_sharded_replay(
        "snake", duration_s=10.0, shards=2, workers=0, checkpoint_dir=store_dir
    )
    warm, warm_digest = run_sharded_replay(
        "snake", duration_s=10.0, shards=2, workers=0, checkpoint_dir=store_dir
    )
    _, plain_digest = run_sharded_replay("snake", duration_s=10.0, shards=2, workers=0)
    assert cold_digest == warm_digest == plain_digest
    assert cold.events_simulated > 0
    assert warm.events_simulated == 0


# -- store maintenance: eviction --------------------------------------------------------


def test_prune_evicts_oldest_and_replay_falls_back_cold(tmp_path):
    store, scope = _scope(tmp_path, "cello-usr", "afraid")
    _replay("cello-usr", "afraid", 12.0, scope=scope)
    assert store.size_bytes() > 0
    assert store.listing()

    removed, freed = store.prune(0)
    assert removed > 0
    assert freed > 0
    assert store.size_bytes() == 0
    # Emptied scope directories are cleaned up too.
    assert not os.path.isdir(scope.path)

    # The evicted store is a plain cold start, not an error.
    cold, digest = _replay("cello-usr", "afraid", 12.0, scope=scope)
    _, expected = _replay("cello-usr", "afraid", 12.0)
    assert digest == expected
    assert cold.events_simulated > 0


def test_prune_keeps_entries_under_budget(tmp_path):
    store, scope = _scope(tmp_path, "cello-usr", "afraid")
    _replay("cello-usr", "afraid", 12.0, scope=scope)
    total = store.size_bytes()
    removed, freed = store.prune(total)
    assert (removed, freed) == (0, 0)
    assert store.size_bytes() == total


# -- recovery: corruption and version skew ----------------------------------------------


def _corrupt_truncate(path):
    with open(path, "rb") as handle:
        blob = handle.read()
    with open(path, "wb") as handle:
        handle.write(blob[: len(blob) // 2])


def test_truncated_entry_is_discarded_and_replay_stays_exact(tmp_path):
    _, scope = _scope(tmp_path, "cello-usr", "afraid")
    _replay("cello-usr", "afraid", 12.0, scope=scope)
    for path in _entry_files(scope):
        _corrupt_truncate(path)
    resumed, digest = _replay("cello-usr", "afraid", 12.0, scope=scope)
    _, expected = _replay("cello-usr", "afraid", 12.0)
    assert digest == expected
    assert resumed.events_simulated > 0  # nothing usable survived → cold


def test_deepest_truncated_cut_falls_back_to_shallower(tmp_path):
    _, scope = _scope(tmp_path, "cello-usr", "afraid")
    populated, _ = _replay("cello-usr", "afraid", 24.0, scope=scope, shards=6)
    cuts = _entry_files(scope, "cut")
    assert len(cuts) >= 2, "expected multiple quiescent cuts at this duration"
    for path in _entry_files(scope, "final"):
        os.unlink(path)
    _corrupt_truncate(cuts[-1])
    resumed, digest = _replay("cello-usr", "afraid", 24.0, scope=scope, shards=6)
    _, expected = _replay("cello-usr", "afraid", 24.0, shards=6)
    assert digest == expected
    assert 0 < resumed.events_simulated < populated.events_simulated
    # Discarded on sight, then rewritten intact by the resumed replay.
    assert scope._read(os.path.basename(cuts[-1])) is not None


def test_garbage_entry_is_discarded(tmp_path):
    _, scope = _scope(tmp_path, "cello-usr", "afraid")
    _replay("cello-usr", "afraid", 12.0, scope=scope)
    path = _entry_files(scope)[0]
    with open(path, "wb") as handle:
        handle.write(b"not a checkpoint at all")
    assert scope._read(os.path.basename(path)) is None
    assert not os.path.exists(path)


def test_version_mismatch_is_refused_naming_both(tmp_path, monkeypatch):
    _, scope = _scope(tmp_path, "cello-usr", "afraid")
    _replay("cello-usr", "afraid", 12.0, scope=scope)
    monkeypatch.setattr(checkpoint_mod, "_REPRO_VERSION", "99.0.0")
    with pytest.raises(CheckpointVersionError) as excinfo:
        _replay("cello-usr", "afraid", 12.0, scope=scope)
    message = str(excinfo.value)
    assert "99.0.0" in message  # the running version
    assert "1.0" in message  # the version that wrote the entry
    assert "--checkpoint-dir" in message


def test_protocol_mismatch_is_refused(tmp_path):
    _, scope = _scope(tmp_path, "cello-usr", "afraid")
    _replay("cello-usr", "afraid", 12.0, scope=scope)
    path = _entry_files(scope)[0]
    with open(path, "rb") as handle:
        blob = handle.read()
    magic = checkpoint_mod._MAGIC
    rest = blob[len(magic):]
    header_line, _, payload = rest.partition(b"\n")
    header = json.loads(header_line)
    header["protocol"] = PICKLE_PROTOCOL + 1
    rewritten = magic + json.dumps(header, sort_keys=True).encode() + b"\n" + payload
    with open(path, "wb") as handle:
        handle.write(rewritten)
    with pytest.raises(CheckpointVersionError) as excinfo:
        scope._read(os.path.basename(path))
    assert str(PICKLE_PROTOCOL) in str(excinfo.value)


# -- keying -----------------------------------------------------------------------------


def test_prefix_digest_guards_against_different_trace_content(tmp_path):
    """Two workloads sharing a scope (forced, by lying in the config) must
    never resume from each other's cuts — the record-prefix digest is the
    last line of defence."""
    store = CheckpointStore(tmp_path / "store")
    config = {"deliberately": "shared"}
    scope = store.scope(config)

    sim = Simulator()
    array = build_array(sim, BaselineAfraidPolicy())
    trace_a = make_trace(
        "cello-usr", duration_s=12.0, seed=42,
        address_space_sectors=array.layout.total_data_sectors,
    )
    replay_trace_sharded(sim, array, trace_a, shards=4, checkpoint=scope)
    assert _entry_files(scope, "cut")

    sim2 = Simulator()
    array2 = build_array(sim2, BaselineAfraidPolicy())
    trace_b = make_trace(
        "snake", duration_s=12.0, seed=42,
        address_space_sectors=array2.layout.total_data_sectors,
    )
    assert scope.lookup_cut(list(trace_b)) is None
    result = replay_trace_sharded(sim2, array2, trace_b, shards=4, checkpoint=scope)
    fresh_sim = Simulator()
    fresh_array = build_array(fresh_sim, BaselineAfraidPolicy())
    expected = replay_trace_sharded(fresh_sim, fresh_array, trace_b, shards=4)
    assert replay_digest(result) == replay_digest(expected)


def test_records_digest_is_prefix_consistent():
    sim = Simulator()
    array = build_array(sim, BaselineAfraidPolicy())
    short = list(
        make_trace(
            "cello-usr", duration_s=8.0, seed=42,
            address_space_sectors=array.layout.total_data_sectors,
        )
    )
    long = list(
        make_trace(
            "cello-usr", duration_s=16.0, seed=42,
            address_space_sectors=array.layout.total_data_sectors,
        )
    )
    assert len(long) > len(short)
    assert records_digest(long, len(short)) == records_digest(short, len(short))


def test_scope_key_covers_code_fingerprint(tmp_path, monkeypatch):
    store = CheckpointStore(tmp_path / "store")
    key_before = store.scope({"a": 1}).key
    monkeypatch.setattr(checkpoint_mod, "code_fingerprint", lambda: "different")
    assert store.scope({"a": 1}).key != key_before


def test_stored_payloads_use_pinned_protocol(tmp_path):
    _, scope = _scope(tmp_path, "cello-usr", "afraid")
    _replay("cello-usr", "afraid", 12.0, scope=scope)
    for path in _entry_files(scope):
        entry = scope._read(os.path.basename(path))
        assert entry is not None
        header, payload = entry
        assert header["protocol"] == PICKLE_PROTOCOL
        # proto 2+ frames open with PROTO opcode naming the version.
        assert payload[0:1] == b"\x80" and payload[1] == PICKLE_PROTOCOL
        pickle.loads(payload)  # revivable
