"""Sharded-replay determinism: byte-identical to the unsharded fast path.

The contract under test (repro.harness.sharding): replaying a trace in N
consecutive time slices with pickled boundary-state handoff produces the
exact observable results — per-request latency doubles in completion
order, every counter, the parity-lag integrals — as one continuous
replay, for any N, whether the shard steps run in-process or in worker
processes.
"""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.array.factory import build_array
from repro.harness.replay import replay_trace
from repro.harness.sharding import (
    ShardReplayResult,
    advance_shard,
    replay_digest,
    replay_trace_sharded,
    run_sharded_replay,
)
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, NeverScrubPolicy
from repro.sim import Simulator
from repro.traces import make_trace

POLICIES = {
    "afraid": BaselineAfraidPolicy,
    "raid5": AlwaysRaid5Policy,
    "raid0": NeverScrubPolicy,
}


def _fresh(policy_name: str):
    sim = Simulator()
    array = build_array(sim, POLICIES[policy_name]())
    return sim, array


def _trace_for(array, workload: str, duration_s: float, seed: int):
    return make_trace(
        workload,
        duration_s=duration_s,
        seed=seed,
        address_space_sectors=array.layout.total_data_sectors,
    )


def _direct(workload: str, policy: str, duration_s: float, seed: int):
    sim, array = _fresh(policy)
    trace = _trace_for(array, workload, duration_s, seed)
    outcome = replay_trace(sim, array, trace)
    return ShardReplayResult.from_array(array, outcome)


def _sharded(workload: str, policy: str, duration_s: float, seed: int, shards: int):
    sim, array = _fresh(policy)
    trace = _trace_for(array, workload, duration_s, seed)
    return replay_trace_sharded(sim, array, trace, shards=shards)


class TestShardCountInvariance:
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_cello_byte_identical(self, policy, shards):
        # 12 sim-s of cello-usr has idle gaps, so cuts actually land and
        # the scrub is still running at the horizon (the restored final
        # shard must clamp there, not drain to quiescence).
        reference = _direct("cello-usr", policy, 12.0, 7)
        result = _sharded("cello-usr", policy, 12.0, 7, shards)
        assert replay_digest(result) == replay_digest(reference)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_att_byte_identical(self, shards):
        # The write-heavy ATT trace has almost no usable idle gaps under
        # AFRAID (§4.4): the cut search must extend, possibly collapsing
        # to a single shard — and still match exactly.
        reference = _direct("ATT", "afraid", 8.0, 11)
        result = _sharded("ATT", "afraid", 8.0, 11, shards)
        assert replay_digest(result) == replay_digest(reference)

    def test_latency_stream_identical_not_just_digest(self):
        reference = _direct("cello-usr", "afraid", 12.0, 7)
        result = _sharded("cello-usr", "afraid", 12.0, 7, 4)
        assert result.stats.io_times == reference.stats.io_times
        assert result.outcome.horizon_s == reference.outcome.horizon_s
        assert result.parity_lag == reference.parity_lag

    def test_n1_equals_direct_flow(self):
        # shards=1 must degenerate to exactly the replay_trace flow with
        # one snapshot round-trip — proving pickling alone changes nothing.
        reference = _direct("cello-usr", "raid5", 10.0, 3)
        result = _sharded("cello-usr", "raid5", 10.0, 3, 1)
        assert replay_digest(result) == replay_digest(reference)


class TestProcessPoolHandoff:
    def test_pool_matches_in_process(self):
        reference = _direct("cello-usr", "afraid", 12.0, 7)
        sim, array = _fresh("afraid")
        trace = _trace_for(array, "cello-usr", 12.0, 7)
        with ProcessPoolExecutor(max_workers=2) as pool:
            result = replay_trace_sharded(
                sim, array, trace, shards=4,
                submit=lambda fn, *args: pool.submit(fn, *args).result(),
            )
        assert replay_digest(result) == replay_digest(reference)


class TestSpecEntryPoint:
    def test_run_sharded_replay_digests_agree(self):
        _result1, digest1 = run_sharded_replay(
            "cello-usr", policy="afraid", duration_s=10.0, seed=42, shards=1
        )
        _result2, digest2 = run_sharded_replay(
            "cello-usr", policy="afraid", duration_s=10.0, seed=42, shards=3
        )
        assert digest1 == digest2

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            run_sharded_replay("cello-usr", policy="nonsense", duration_s=5.0)

    def test_bad_shard_count_rejected(self):
        sim, array = _fresh("afraid")
        trace = _trace_for(array, "cello-usr", 5.0, 42)
        with pytest.raises(ValueError, match="shards must be >= 1"):
            replay_trace_sharded(sim, array, trace, shards=0)


class TestCutSearch:
    def test_no_cut_signals_none(self):
        # A tentative count at/past the slice end cannot produce a cut.
        import pickle

        sim, array = _fresh("afraid")
        payload = pickle.dumps((sim, array, [], []), protocol=pickle.HIGHEST_PROTOCOL)
        trace = _trace_for(array, "cello-usr", 5.0, 42)
        records = list(trace)
        assert advance_shard(payload, records, len(records), True, 0.0) is None
