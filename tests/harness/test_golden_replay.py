"""Golden-equivalence gate for the trace-replay fast path.

A fixed-seed replay of the paper-trace mix must produce *identical*
simulated results no matter how the data plane is implemented: the fast
path (layout tables + extent caching, the seek lookup table, the timeout
freelist, the flattened controller loops) is pure mechanical sympathy and
must not move a single float.

The committed fixture (``golden_replay.json``) was captured from the
pre-fast-path implementation; this test replays the same scenarios and
compares:

* every :class:`~repro.array.controller.ArrayStats` counter,
* the per-class latency histograms (exact bucket payloads),
* the parity-lag integral (unprotected fraction / mean / peak lag),
* a digest of the raw per-request latency stream.

Regenerate (only when *intentionally* changing simulated behaviour)::

    PYTHONPATH=src python tests/harness/test_golden_replay.py --regen
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import struct

from repro.array.factory import build_array
from repro.harness.replay import replay_trace
from repro.obs import HistogramSet
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, NeverScrubPolicy
from repro.sim import Simulator
from repro.traces import make_trace

FIXTURE = pathlib.Path(__file__).with_name("golden_replay.json")

#: One write-light and one write-heavy workload; short enough to keep the
#: gate fast, long enough to exercise every write mode, the scrubber, the
#: read cache, and the C-LOOK host queue.
SCENARIOS = [
    {"workload": "cello-usr", "duration_s": 40.0, "seed": 7},
    {"workload": "ATT", "duration_s": 20.0, "seed": 11},
]
POLICIES = {
    "raid0": NeverScrubPolicy,
    "afraid": BaselineAfraidPolicy,
    "raid5": AlwaysRaid5Policy,
}


def _digest(values: list[float]) -> str:
    """An order-sensitive exact digest of a float stream."""
    return hashlib.sha256(struct.pack(f"<{len(values)}d", *values)).hexdigest()


def capture(workload: str, duration_s: float, seed: int, policy_name: str) -> dict:
    """Replay one (workload, policy) cell and capture everything observable."""
    sim = Simulator()
    array = build_array(sim, POLICIES[policy_name]())
    hists = HistogramSet()
    array.attach_observability(histograms=hists)
    trace = make_trace(
        workload,
        duration_s=duration_s,
        address_space_sectors=array.layout.total_data_sectors,
        seed=seed,
    )
    outcome = replay_trace(sim, array, trace)
    assert not outcome.failures
    stats = dataclasses.asdict(array.stats)
    io_times = stats.pop("io_times")
    tracker = array.lag_tracker
    return {
        "stats": stats,
        "io_times_digest": _digest(io_times),
        "io_times_count": len(io_times),
        "latency_hists": hists.to_payload(),
        "parity_lag": {
            "unprotected_fraction": tracker.unprotected_fraction,
            "mean_parity_lag_bytes": tracker.mean_parity_lag_bytes,
            "peak_parity_lag_bytes": tracker.peak_parity_lag_bytes,
            "total_time": tracker.total_time,
        },
        "horizon_s": outcome.horizon_s,
        "events_dispatched": sim.events_dispatched,
    }


def capture_all() -> dict:
    results = {}
    for scenario in SCENARIOS:
        for policy_name in POLICIES:
            key = f"{scenario['workload']}/{policy_name}"
            results[key] = capture(
                scenario["workload"], scenario["duration_s"], scenario["seed"], policy_name
            )
    return {"scenarios": SCENARIOS, "results": results}


def test_replay_matches_golden_fixture():
    golden = json.loads(FIXTURE.read_text(encoding="utf-8"))
    fresh = capture_all()
    for key, expected in golden["results"].items():
        actual = fresh["results"][key]
        assert actual["stats"] == expected["stats"], f"{key}: ArrayStats diverged"
        assert actual["io_times_count"] == expected["io_times_count"], key
        assert actual["io_times_digest"] == expected["io_times_digest"], (
            f"{key}: per-request latency stream diverged"
        )
        assert actual["latency_hists"] == expected["latency_hists"], (
            f"{key}: latency histograms diverged"
        )
        assert actual["parity_lag"] == expected["parity_lag"], (
            f"{key}: parity-lag integral diverged"
        )
        assert actual["horizon_s"] == expected["horizon_s"], key


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("run with --regen to overwrite the committed fixture")
    FIXTURE.write_text(json.dumps(capture_all(), indent=1), encoding="utf-8")
    print(f"wrote {FIXTURE}")
