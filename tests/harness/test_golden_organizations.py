"""Golden-equivalence gate for the mirrored and declustered organizations.

The companion to :mod:`tests.harness.test_golden_replay`, which pins the
original RAID 0/5/AFRAID paths bit-identically.  This fixture pins the
*new* organizations introduced with :class:`~repro.layout.ArrayOrganization`:
one mirrored scenario per mirror flavour (RAID 1, RAID 1/0, RAID 1+5) and
one declustered RAID 5 scenario, all under the deferring AFRAID policy so
the deferral machinery (mirror-copy deferral for RAID 1/1/0, parity
deferral for RAID 1+5 and declustered RAID 5) is exercised end to end.

Regenerate (only when *intentionally* changing simulated behaviour)::

    PYTHONPATH=src python tests/harness/test_golden_organizations.py --regen
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import struct

from repro.array.factory import build_array
from repro.harness.replay import replay_trace
from repro.obs import HistogramSet
from repro.policy import BaselineAfraidPolicy
from repro.sim import Simulator
from repro.traces import make_trace

FIXTURE = pathlib.Path(__file__).with_name("golden_organizations.json")

#: (organization, ndisks) cells replayed under the AFRAID policy.  The
#: write-heavy ATT mix keeps the deferral queues busy; cello-usr covers a
#: read-dominated mix on the two organizations whose read path differs
#: most from rotated RAID 5 (mirror read-balancing, declustered mapping).
SCENARIOS = [
    {"workload": "ATT", "duration_s": 20.0, "seed": 11},
    {"workload": "cello-usr", "duration_s": 40.0, "seed": 7},
]
ORGANIZATIONS = {
    "raid1": 2,
    "raid10": 6,
    "raid15": 6,
    "raid5d": 6,
}
#: Keep the gate fast: every organization runs the write-heavy trace, the
#: read-heavy trace runs on the representative mirrored + declustered pair.
CELLS = [
    ("ATT", "raid1"),
    ("ATT", "raid10"),
    ("ATT", "raid15"),
    ("ATT", "raid5d"),
    ("cello-usr", "raid10"),
    ("cello-usr", "raid5d"),
]


def _digest(values: list[float]) -> str:
    """An order-sensitive exact digest of a float stream."""
    return hashlib.sha256(struct.pack(f"<{len(values)}d", *values)).hexdigest()


def capture(workload: str, duration_s: float, seed: int, organization: str) -> dict:
    """Replay one (workload, organization) cell and capture everything observable."""
    sim = Simulator()
    array = build_array(
        sim,
        BaselineAfraidPolicy(),
        ndisks=ORGANIZATIONS[organization],
        organization=organization,
    )
    hists = HistogramSet()
    array.attach_observability(histograms=hists)
    trace = make_trace(
        workload,
        duration_s=duration_s,
        address_space_sectors=array.layout.total_data_sectors,
        seed=seed,
    )
    outcome = replay_trace(sim, array, trace)
    assert not outcome.failures
    stats = dataclasses.asdict(array.stats)
    io_times = stats.pop("io_times")
    tracker = array.lag_tracker
    return {
        "stats": stats,
        "io_times_digest": _digest(io_times),
        "io_times_count": len(io_times),
        "latency_hists": hists.to_payload(),
        "parity_lag": {
            "unprotected_fraction": tracker.unprotected_fraction,
            "mean_parity_lag_bytes": tracker.mean_parity_lag_bytes,
            "peak_parity_lag_bytes": tracker.peak_parity_lag_bytes,
            "total_time": tracker.total_time,
        },
        "horizon_s": outcome.horizon_s,
        "events_dispatched": sim.events_dispatched,
    }


def capture_all() -> dict:
    scenarios = {s["workload"]: s for s in SCENARIOS}
    results = {}
    for workload, organization in CELLS:
        scenario = scenarios[workload]
        key = f"{workload}/{organization}"
        results[key] = capture(
            workload, scenario["duration_s"], scenario["seed"], organization
        )
    return {"scenarios": SCENARIOS, "results": results}


def test_organizations_match_golden_fixture():
    golden = json.loads(FIXTURE.read_text(encoding="utf-8"))
    fresh = capture_all()
    assert set(fresh["results"]) == set(golden["results"])
    for key, expected in golden["results"].items():
        actual = fresh["results"][key]
        assert actual["stats"] == expected["stats"], f"{key}: ArrayStats diverged"
        assert actual["io_times_count"] == expected["io_times_count"], key
        assert actual["io_times_digest"] == expected["io_times_digest"], (
            f"{key}: per-request latency stream diverged"
        )
        assert actual["latency_hists"] == expected["latency_hists"], (
            f"{key}: latency histograms diverged"
        )
        assert actual["parity_lag"] == expected["parity_lag"], (
            f"{key}: parity-lag integral diverged"
        )
        assert actual["horizon_s"] == expected["horizon_s"], key


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit("run with --regen to overwrite the committed fixture")
    FIXTURE.write_text(json.dumps(capture_all(), indent=1), encoding="utf-8")
    print(f"wrote {FIXTURE}")
