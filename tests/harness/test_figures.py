"""Tests for the ASCII figure renderers."""

import pytest

from repro.harness.figures import ascii_bars, ascii_scatter, ascii_series


class TestScatter:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_scatter([])

    def test_renders_points_and_legend(self):
        text = ascii_scatter(
            [(1.0, 1.0, "raid5"), (4.0, 0.4, "afraid")],
            title="tradeoff",
            x_label="perf",
            y_label="avail",
        )
        assert "tradeoff" in text
        assert "r=raid5" in text
        assert "a=afraid" in text
        assert text.count("r") >= 1
        assert "perf" in text

    def test_axes_scale_to_data(self):
        text = ascii_scatter([(10.0, 100.0, "p")])
        assert "10.50" in text  # x max with 5% headroom
        assert "105.00" in text  # y max


class TestBars:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars([("a", 0.0)])

    def test_bars_proportional(self):
        text = ascii_bars([("big", 100.0), ("small", 25.0)], width=40, unit="ms")
        lines = text.splitlines()
        big_line = next(line for line in lines if line.startswith("big"))
        small_line = next(line for line in lines if line.startswith("small"))
        assert big_line.count("#") == 40
        assert 8 <= small_line.count("#") <= 12
        assert "100ms" in big_line


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_series(["a", "b"], {"s": [1.0]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_series(["a"], {})

    def test_renders_markers_per_series(self):
        text = ascii_series(
            ["raid5", "afraid", "raid0"],
            {"ATT": [160.0, 20.0, 19.0], "hplajw": [58.0, 18.0, 19.0]},
            title="figure 4",
        )
        assert "figure 4" in text
        assert "A=ATT" in text
        assert "h=hplajw" in text
        assert "raid5 ... raid0" in text
