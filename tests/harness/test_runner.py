"""The parallel sweep engine: cache behaviour, parallel determinism."""

import dataclasses
import json
import os
import time

import pytest

from repro.harness import (
    merged_exposure_histograms,
    merged_histograms,
    run_policy_grid,
    policy_ladder,
)
from repro.harness.runner import (
    CellExecutor,
    CellSpec,
    PolicySpec,
    ResultCache,
    SweepInterrupted,
    cache_key,
    code_fingerprint,
    ladder_specs,
    run_cell,
    run_cells,
)
from repro.metrics import PerfCounters

#: Short enough to keep the whole module fast, long enough for real I/O.
QUICK = dict(duration_s=2.0, seed=11)


def quick_specs(workloads=("hplajw",), kinds=("afraid", "raid0")):
    return [
        CellSpec(workload=workload, policy=PolicySpec(kind), **QUICK)
        for workload in workloads
        for kind in kinds
    ]


class TestPolicySpec:
    def test_builds_each_kind(self):
        for kind in ("raid5", "afraid", "raid0"):
            assert PolicySpec(kind).build() is not PolicySpec(kind).build()
        policy = PolicySpec("mttdl", mttdl_target=1e7).build()
        assert "MTTDL" in policy.describe() or "mttdl" in policy.describe().lower()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            PolicySpec("raid99")

    def test_mttdl_requires_target(self):
        with pytest.raises(ValueError):
            PolicySpec("mttdl")

    def test_labels_match_ladder_labels(self):
        ladder = policy_ladder(targets=(1e7, 1e6))
        for entry in ladder:
            assert entry.spec is not None
            assert entry.spec.label == entry.label


class TestCacheKey:
    def test_stable_for_equal_specs(self):
        a = CellSpec(workload="hplajw", policy=PolicySpec("afraid"), **QUICK)
        b = CellSpec(workload="hplajw", policy=PolicySpec("afraid"), **QUICK)
        assert cache_key(a) == cache_key(b)

    def test_changes_with_array_config(self):
        base = CellSpec(workload="hplajw", policy=PolicySpec("afraid"), **QUICK)
        assert cache_key(base) != cache_key(dataclasses.replace(base, ndisks=7))
        assert cache_key(base) != cache_key(dataclasses.replace(base, duration_s=3.0))
        assert cache_key(base) != cache_key(dataclasses.replace(base, seed=12))

    def test_changes_with_policy_params(self):
        base = CellSpec(
            workload="hplajw", policy=PolicySpec("mttdl", mttdl_target=1e7), **QUICK
        )
        other = dataclasses.replace(base, policy=PolicySpec("mttdl", mttdl_target=1e6))
        assert cache_key(base) != cache_key(other)

    def test_code_fingerprint_is_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        specs = quick_specs()
        cold = run_cells(specs, cache_dir=tmp_path)
        assert (cold.simulated, cold.cached) == (len(specs), 0)
        warm = run_cells(specs, cache_dir=tmp_path)
        assert (warm.simulated, warm.cached) == (0, len(specs))
        for key in cold.results:
            assert warm.results[key].to_dict() == cold.results[key].to_dict()

    def test_round_trip_preserves_every_field(self, tmp_path):
        spec = quick_specs(kinds=("raid0",))[0]  # raid0: has infinite MTTDL fields
        direct = run_cell(spec)
        run_cells([spec], cache_dir=tmp_path)
        revived = run_cells([spec], cache_dir=tmp_path).results[spec.key]
        assert revived == direct

    def test_config_change_is_a_miss(self, tmp_path):
        specs = quick_specs()
        run_cells(specs, cache_dir=tmp_path)
        changed = [dataclasses.replace(spec, seed=99) for spec in specs]
        outcome = run_cells(changed, cache_dir=tmp_path)
        assert (outcome.simulated, outcome.cached) == (len(specs), 0)

    def test_corrupted_entry_recomputes_without_crashing(self, tmp_path):
        specs = quick_specs(kinds=("afraid",))
        cold = run_cells(specs, cache_dir=tmp_path)
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        entries[0].write_text("{ not json !!!")
        recovered = run_cells(specs, cache_dir=tmp_path)
        assert (recovered.simulated, recovered.cached) == (1, 0)
        assert recovered.results == cold.results or (
            recovered.results[specs[0].key].to_dict() == cold.results[specs[0].key].to_dict()
        )
        # And the recomputed result was re-cached, replacing the junk.
        assert run_cells(specs, cache_dir=tmp_path).cached == 1

    def test_wrong_shape_entry_is_also_tolerated(self, tmp_path):
        specs = quick_specs(kinds=("afraid",))
        run_cells(specs, cache_dir=tmp_path)
        entry = next(tmp_path.glob("*.json"))
        entry.write_text(json.dumps({"valid": "json", "wrong": "shape"}))
        assert run_cells(specs, cache_dir=tmp_path).simulated == 1

    def test_cacheless_run_never_writes(self, tmp_path):
        run_cells(quick_specs(), cache_dir=None)
        assert list(tmp_path.iterdir()) == []

    def test_load_returns_none_for_unknown_key(self, tmp_path):
        assert ResultCache(tmp_path).load("0" * 64) is None


def _entry(cache, name, size, mtime):
    path = cache.root / (name * 64 + ".json")
    path.write_text("x" * size)
    os.utime(path, (mtime, mtime))
    return path


class TestCachePrune:
    def test_size_bytes_sums_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        _entry(cache, "a", 100, 1000)
        _entry(cache, "b", 250, 2000)
        assert cache.size_bytes() == 350

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        oldest = _entry(cache, "a", 400, 1000)
        middle = _entry(cache, "b", 400, 2000)
        newest = _entry(cache, "c", 400, 3000)
        removed, freed = cache.prune(900)
        assert (removed, freed) == (1, 400)
        assert not oldest.exists()
        assert middle.exists() and newest.exists()
        assert cache.size_bytes() == 800

    def test_prune_under_limit_is_a_no_op(self, tmp_path):
        cache = ResultCache(tmp_path)
        _entry(cache, "a", 100, 1000)
        assert cache.prune(1 << 20) == (0, 0)
        assert cache.size_bytes() == 100

    def test_prune_to_zero_clears_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        _entry(cache, "a", 100, 1000)
        _entry(cache, "b", 100, 2000)
        assert cache.prune(0) == (2, 200)
        assert cache.size_bytes() == 0

    def test_pruned_sweep_cache_recomputes_cleanly(self, tmp_path):
        specs = quick_specs(kinds=("afraid",))
        run_cells(specs, cache_dir=tmp_path)
        ResultCache(tmp_path).prune(0)
        assert run_cells(specs, cache_dir=tmp_path).simulated == 1


class TestSweepInterrupted:
    def test_serial_interrupt_reports_progress_and_keeps_cache(
        self, tmp_path, monkeypatch
    ):
        import repro.harness.runner as runner_mod

        specs = quick_specs(kinds=("afraid", "raid0", "raid5"))
        calls = []
        real = run_cell

        def interrupt_on_second(spec):
            calls.append(spec)
            if len(calls) == 2:
                raise KeyboardInterrupt
            return real(spec)

        monkeypatch.setattr(runner_mod, "run_cell", interrupt_on_second)
        with pytest.raises(SweepInterrupted) as excinfo:
            run_cells(specs, jobs=1, cache_dir=tmp_path)
        assert (excinfo.value.completed, excinfo.value.total) == (1, 3)
        # It is still a KeyboardInterrupt for callers that do not care.
        assert isinstance(excinfo.value, KeyboardInterrupt)
        # The finished cell was cached, so a rerun resumes there.
        monkeypatch.setattr(runner_mod, "run_cell", real)
        resumed = run_cells(specs, jobs=1, cache_dir=tmp_path)
        assert resumed.cached == 1
        assert resumed.simulated == 2

    def test_interrupt_counts_prior_cache_hits(self, tmp_path, monkeypatch):
        import repro.harness.runner as runner_mod

        specs = quick_specs(kinds=("afraid", "raid0"))
        run_cells(specs[:1], cache_dir=tmp_path)

        def interrupt(spec):
            raise KeyboardInterrupt

        monkeypatch.setattr(runner_mod, "run_cell", interrupt)
        with pytest.raises(SweepInterrupted) as excinfo:
            run_cells(specs, jobs=1, cache_dir=tmp_path)
        assert (excinfo.value.completed, excinfo.value.total) == (1, 2)


class TestCellExecutor:
    def test_callbacks_fire_once_per_cell_and_write_through(self, tmp_path):
        specs = quick_specs()
        cache = ResultCache(tmp_path)
        executor = CellExecutor(jobs=2, cache=cache).start()
        outcomes = []
        try:
            for spec in specs:
                executor.submit(spec, outcomes.append)
            deadline = time.monotonic() + 120
            while len(outcomes) < len(specs):
                assert time.monotonic() < deadline
                time.sleep(0.05)
        finally:
            executor.shutdown(drain=True)
        assert sorted(o.spec.key for o in outcomes) == sorted(s.key for s in specs)
        assert all(o.error is None and o.attempts == 1 for o in outcomes)
        for spec in specs:
            assert cache.load(cache_key(spec)) is not None

    def test_warm_submit_completes_synchronously(self, tmp_path):
        spec = quick_specs(kinds=("afraid",))[0]
        run_cells([spec], cache_dir=tmp_path)
        executor = CellExecutor(jobs=1, cache=ResultCache(tmp_path)).start()
        outcomes = []
        try:
            executor.submit(spec, outcomes.append)
            # No waiting: the hit was delivered on the calling thread.
            assert len(outcomes) == 1
            assert outcomes[0].from_cache
            assert executor.queue_depth == 0
        finally:
            executor.shutdown(drain=True)

    def test_submit_after_shutdown_is_an_error(self, tmp_path):
        executor = CellExecutor(jobs=1).start()
        executor.shutdown(drain=True)
        with pytest.raises(RuntimeError):
            executor.submit(quick_specs()[0], lambda outcome: None)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            CellExecutor(jobs=0)
        with pytest.raises(ValueError):
            CellExecutor(max_attempts=0)


class TestParallelDeterminism:
    def test_jobs_1_and_jobs_4_are_identical(self, tmp_path):
        """The acceptance bar: parallel fan-out must not change results.

        Every cell runs a fresh Simulator with explicitly-seeded RNG, so
        worker count and scheduling order are invisible to the output.
        """
        specs = ladder_specs(["hplajw", "ATT"], targets=[1e7], **QUICK)
        serial = run_cells(specs, jobs=1)
        parallel = run_cells(specs, jobs=4)
        assert serial.results.keys() == parallel.results.keys()
        for key in serial.results:
            assert serial.results[key] == parallel.results[key], key

    def test_grid_through_engine_matches_legacy_serial_path(self):
        workloads = ["hplajw"]
        ladder = policy_ladder(targets=(1e7,))
        legacy = run_policy_grid(workloads, ladder, **QUICK)
        engine = run_policy_grid(workloads, ladder, jobs=2, **QUICK)
        assert legacy.keys() == engine.keys()
        for key in legacy:
            assert legacy[key].to_dict() == engine[key].to_dict(), key

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_cells(quick_specs(), jobs=0)


class TestCounters:
    def test_sweep_counts_cells_and_ios(self, tmp_path):
        counters = PerfCounters()
        specs = quick_specs()
        run_cells(specs, cache_dir=tmp_path, counters=counters)
        assert counters.counts["cells_simulated"] == len(specs)
        assert counters.counts["cells_cached"] == 0
        assert counters.counts["ios_serviced"] > 0
        warm = PerfCounters()
        run_cells(specs, cache_dir=tmp_path, counters=warm)
        assert warm.counts["cells_cached"] == len(specs)
        assert warm.counts["cells_simulated"] == 0


class TestHistogramsThroughTheEngine:
    def test_merged_histograms_identical_across_worker_counts(self):
        """Per-worker histograms merged in the parent must equal the
        serial run's — merge is exact, so worker count is invisible."""
        specs = ladder_specs(["hplajw", "ATT"], targets=[1e7], **QUICK)
        serial = merged_histograms(run_cells(specs, jobs=1).results.values())
        parallel = merged_histograms(run_cells(specs, jobs=4).results.values())
        assert serial == parallel
        assert serial.total_count > 0
        for q in (50, 90, 95, 99):
            assert serial.get("client_read").percentile(q) == parallel.get(
                "client_read"
            ).percentile(q)

    def test_cache_round_trip_preserves_histograms(self, tmp_path):
        spec = quick_specs(kinds=("afraid",))[0]
        direct = run_cell(spec)
        run_cells([spec], cache_dir=tmp_path)
        revived = run_cells([spec], cache_dir=tmp_path).results[spec.key]
        assert revived.latency_hists == direct.latency_hists
        assert revived.histogram_set() == direct.histogram_set()
        assert revived.histogram_set().get("client_write").count == direct.writes

    def test_merged_histograms_skips_payloadless_results(self):
        spec = quick_specs(kinds=("afraid",))[0]
        result = run_cell(spec)
        legacy = dataclasses.replace(result, latency_hists=None)
        merged = merged_histograms([result, legacy])
        assert merged == merged_histograms([result])


class TestExposureHistogramsThroughTheEngine:
    def test_merged_exposure_histograms_identical_across_worker_counts(self):
        """Acceptance: --jobs 4 merged exposure histograms equal serial
        exactly — the same exact-merge bar latency histograms meet."""
        specs = ladder_specs(["hplajw", "ATT"], targets=[1e7], **QUICK)
        serial = merged_exposure_histograms(run_cells(specs, jobs=1).results.values())
        parallel = merged_exposure_histograms(run_cells(specs, jobs=4).results.values())
        assert serial == parallel
        assert serial.total_count > 0  # AFRAID-family cells record dwells
        for q in (50, 90, 95, 99):
            assert serial.get("dirty_dwell").percentile(q) == parallel.get(
                "dirty_dwell"
            ).percentile(q)

    def test_cache_round_trip_preserves_exposure_histograms(self, tmp_path):
        spec = quick_specs(kinds=("afraid",))[0]
        direct = run_cell(spec)
        run_cells([spec], cache_dir=tmp_path)
        revived = run_cells([spec], cache_dir=tmp_path).results[spec.key]
        assert revived.exposure_hists == direct.exposure_hists
        assert revived.exposure_histogram_set() == direct.exposure_histogram_set()

    def test_merged_exposure_histograms_skips_payloadless_results(self):
        spec = quick_specs(kinds=("afraid",))[0]
        result = run_cell(spec)
        legacy = dataclasses.replace(result, exposure_hists=None)
        merged = merged_exposure_histograms([result, legacy])
        assert merged == merged_exposure_histograms([result])
