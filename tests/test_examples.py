"""Smoke tests: every shipped example runs clean and says what it should.

Examples are deliverables too — these keep them working as the library
evolves.  Each runs in-process via runpy with small arguments.
"""

import pathlib
import runpy
import sys


EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py")
    assert "small-update problem" in out
    assert "total 4" in out  # RAID 5 critical-path I/Os
    assert "total 1" in out  # AFRAID
    assert "dirty stripes = 0" in out  # scrubbed after idle


def test_trace_replay(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "trace_replay.py", ["snake", "8"])
    assert "raid0" in out and "afraid" in out and "raid5" in out
    assert "faster than RAID 5" in out


def test_policy_tradeoff(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "policy_tradeoff.py", ["AS400-3", "8"])
    assert "availability/performance ladder" in out
    assert "MTTDL_" in out


def test_failure_injection(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "failure_injection.py")
    assert "predicted loss" in out
    assert "actual loss" in out
    assert "scrubber wins the race" in out


def test_availability_calculator(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "availability_calculator.py")
    assert "475," in out  # the 475,000-year figure
    assert "67 bytes/hour" in out  # PrestoServe


def test_raid6_exploration(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "raid6_exploration.py")
    assert "recovered both lost units" in out
    assert "defer_both" in out


def test_fit_your_workload(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "fit_your_workload.py", ["AS400-4", "15"])
    assert "fitted:" in out
    assert "what each policy would deliver" in out


def test_every_example_is_covered():
    """If someone adds an example, this suite must grow with it."""
    shipped = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {
        "quickstart.py",
        "trace_replay.py",
        "policy_tradeoff.py",
        "failure_injection.py",
        "availability_calculator.py",
        "raid6_exploration.py",
        "fit_your_workload.py",
        "observability_demo.py",
        "exposure_demo.py",
        "service_demo.py",
        "nemesis_demo.py",
    }
    assert shipped == covered


def test_observability_demo(monkeypatch, capsys, tmp_path):
    out_file = tmp_path / "demo_trace.json"
    out = run_example(
        monkeypatch, capsys, "observability_demo.py", ["hplajw", "6", str(out_file)]
    )
    assert "per-class latency percentiles" in out
    assert "client_write" in out
    assert "parity debt over time" in out
    assert out_file.exists()


def test_service_demo(monkeypatch, capsys, tmp_path):
    out = run_example(
        monkeypatch, capsys, "service_demo.py",
        ["hplajw", "2", str(tmp_path / "cache")],
    )
    assert "daemon listening on http://127.0.0.1:" in out
    assert "[job_completed]" in out
    assert "MISMATCH" not in out
    assert "served == local sweep: identical" in out
    assert "state='done' in the 202 response" in out
    assert "drained; bye" in out


def test_exposure_demo(monkeypatch, capsys, tmp_path):
    prom = tmp_path / "metrics.prom"
    jsonl = tmp_path / "snaps.jsonl"
    out = run_example(
        monkeypatch, capsys, "exposure_demo.py",
        ["hplajw", "6", str(prom), str(jsonl)],
    )
    assert "final registry state" in out
    assert "windowed_mttdl_h" in out
    assert "SLO breach/recovery timeline" in out
    assert "achieved MTTDL" in out
    assert prom.exists() and jsonl.exists()

    from repro.obs import parse_prometheus_text, read_jsonl_snapshots

    parsed = parse_prometheus_text(prom.read_text())
    assert "parity_lag_bytes" in parsed["samples"]
    assert len(read_jsonl_snapshots(jsonl)) > 0


def test_nemesis_demo(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "nemesis_demo.py", ["8", "3"])
    assert "faults injected:" in out
    assert "injection gate:" in out
    assert "breach of `degraded_disks < 1`" in out
    assert "0 invariant violation(s)" in out
    assert "same-seed rerun byte-identical: True" in out
