"""ServiceMetrics: the daemon's registry namespace, under concurrency.

Warm cache hits record from the submitting thread while cold cells
record from the dispatcher, so ``record_lookup`` races unless the
counter increment and the ratio update are one atomic step.
"""

import threading

from repro.obs.service import ServiceMetrics


class TestRecordLookup:
    def test_single_thread_accounting(self):
        metrics = ServiceMetrics()
        for hit in (True, True, False, True):
            metrics.record_lookup(hit)
        assert metrics.cache_hits.value == 3
        assert metrics.cache_misses.value == 1
        assert metrics.cache_hit_ratio.value == 0.75

    def test_concurrent_lookups_lose_nothing(self):
        metrics = ServiceMetrics()
        per_thread, threads = 2000, 8
        start = threading.Barrier(threads)

        def pound(worker: int) -> None:
            start.wait()
            for i in range(per_thread):
                metrics.record_lookup(hit=(worker + i) % 2 == 0)

        workers = [
            threading.Thread(target=pound, args=(n,)) for n in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        total = threads * per_thread
        hits = metrics.cache_hits.value
        misses = metrics.cache_misses.value
        assert hits + misses == total  # float += under a lock drops nothing
        assert hits == total / 2
        assert metrics.cache_hit_ratio.value == hits / total

    def test_shared_registry_reuse(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        metrics = ServiceMetrics(registry)
        assert metrics.registry is registry
        metrics.record_lookup(hit=False)
        assert registry.value("service_cache_misses") == 1
        assert registry.value("service_cache_hit_ratio") == 0.0
