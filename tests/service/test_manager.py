"""Job orchestration: lifecycle, cache-first answers, backpressure, events."""

import json
import time

import pytest

from repro.harness.runner import (
    CellSpec,
    PolicySpec,
    ResultCache,
    cache_key,
    result_to_payload,
    run_cell,
    run_cells,
)
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    JobManager,
    ProtocolError,
    QueueFull,
    RUNNING,
    ServiceClosed,
    cell_label,
)

#: Short simulated duration keeps pool round-trips fast but real.
QUICK = dict(duration_s=1.0, seed=11)

WAIT_S = 120.0


def quick_payload(workloads=("hplajw",), kinds=("afraid",)):
    return {
        "cells": [{"workload": w, "policy": k} for w in workloads for k in kinds],
        **QUICK,
    }


def quick_specs(workloads=("hplajw",), kinds=("afraid",)):
    return [
        CellSpec(workload=w, policy=PolicySpec(k), **QUICK)
        for w in workloads
        for k in kinds
    ]


def _explode(spec):
    """A cell function that must never be reached (warm-path proof)."""
    raise RuntimeError(f"pool should not run {spec.key}")


def _sleepy(spec):
    """Holds a worker long enough for admission/cancel tests to observe it."""
    time.sleep(1.5)
    return run_cell(spec)


@pytest.fixture
def manager(tmp_path):
    mgr = JobManager(jobs=2, cache_dir=tmp_path / "cache")
    yield mgr
    mgr.shutdown(drain=False)


class TestLifecycle:
    def test_submit_runs_to_done(self, manager):
        job = manager.submit(quick_payload(kinds=("afraid", "raid0")))
        assert job.state == RUNNING
        assert job.wait(WAIT_S) == DONE
        snapshot = job.snapshot()
        assert snapshot["cells_total"] == 2
        assert snapshot["cells_simulated"] == 2
        assert snapshot["cells_cached"] == 0
        assert snapshot["error"] is None
        payload = job.result_payload()
        assert set(payload["cells"]) == {"hplajw/afraid", "hplajw/raid0"}
        assert all(not d["from_cache"] for d in payload["details"])

    def test_accepts_prebuilt_spec_lists(self, manager):
        job = manager.submit(quick_specs())
        assert job.wait(WAIT_S) == DONE
        assert job.simulated == 1

    def test_bad_payload_creates_no_job(self, manager):
        with pytest.raises(ProtocolError):
            manager.submit({"cells": []})
        assert manager.list_jobs() == []
        assert manager.metrics.jobs_submitted.value == 0

    def test_submit_after_shutdown_refused(self, tmp_path):
        mgr = JobManager(jobs=1, cache_dir=tmp_path / "cache")
        mgr.shutdown(drain=True)
        with pytest.raises(ServiceClosed):
            mgr.submit(quick_payload())

    def test_events_are_ordered_and_bracketed(self, manager):
        job = manager.submit(quick_payload(kinds=("afraid", "raid0")))
        assert job.wait(WAIT_S) == DONE
        events = job.wait_events(0, timeout=5.0)
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[0]["event"] == "submitted"
        assert events[-1]["event"] == "job_completed"
        completions = [e for e in events if e["event"] == "cell_completed"]
        assert len(completions) == 2
        for event in completions:
            assert event["latency_s"] > 0
            assert event["mean_io_time_ms"] > 0
            # Each completion embeds a live metric snapshot for dashboards.
            assert set(event["metrics"]) >= {
                "queue_depth", "cells_in_flight", "jobs_in_flight",
                "cache_hit_ratio", "worker_restarts",
            }


class TestByteIdentityWithSweep:
    def test_job_results_match_sweep_encoding_exactly(self, manager, tmp_path):
        """The acceptance bar: a job's per-cell payload is byte-identical
        to what ``afraid-sim sweep`` writes to its cache for the same spec."""
        specs = quick_specs(kinds=("afraid", "raid0"))
        sweep = run_cells(specs, cache_dir=tmp_path / "sweep-cache")

        job = manager.submit(quick_payload(kinds=("afraid", "raid0")))
        assert job.wait(WAIT_S) == DONE
        payload = job.result_payload()
        for spec in specs:
            expected = result_to_payload(sweep.results[spec.key])
            served = payload["cells"][cell_label(spec)]
            assert json.dumps(served, sort_keys=True) == json.dumps(
                expected, sort_keys=True
            )

    def test_service_cache_entries_readable_by_sweep(self, manager):
        """Cells simulated by the service land in the shared cache, so a
        later ``afraid-sim sweep`` over the same grid is a pure warm read."""
        job = manager.submit(quick_payload())
        assert job.wait(WAIT_S) == DONE
        warm = run_cells(quick_specs(), cache_dir=manager.cache.root)
        assert (warm.cached, warm.simulated) == (1, 0)


class TestWarmPath:
    def test_cached_job_done_before_submit_returns(self, tmp_path):
        """The warm path never touches the pool: with every cell cached, a
        manager whose cell function *raises* still answers correctly."""
        cache_dir = tmp_path / "cache"
        specs = quick_specs(kinds=("afraid", "raid0"))
        sweep = run_cells(specs, cache_dir=cache_dir)

        mgr = JobManager(jobs=1, cache_dir=cache_dir, cell_fn=_explode)
        try:
            job = mgr.submit(quick_payload(kinds=("afraid", "raid0")))
            # No wait: cache hits complete synchronously in the submitting
            # thread, so the job is already terminal.
            assert job.state == DONE
            assert (job.cached, job.simulated) == (2, 0)
            assert mgr.metrics.cache_hits.value == 2
            assert mgr.metrics.cache_misses.value == 0
            payload = job.result_payload()
            for spec in specs:
                assert payload["cells"][cell_label(spec)] == result_to_payload(
                    sweep.results[spec.key]
                )
        finally:
            mgr.shutdown(drain=False)

    def test_mixed_job_counts_hits_and_misses(self, manager):
        first = manager.submit(quick_payload())
        assert first.wait(WAIT_S) == DONE
        mixed = manager.submit(quick_payload(kinds=("afraid", "raid0")))
        assert mixed.wait(WAIT_S) == DONE
        assert (mixed.cached, mixed.simulated) == (1, 1)
        assert manager.metrics.cache_hit_ratio.value == pytest.approx(1 / 3)


class TestBackpressure:
    def test_queue_full_rejects_whole_job(self, tmp_path):
        mgr = JobManager(jobs=1, cache_dir=None, queue_limit=1, cell_fn=_sleepy)
        try:
            admitted = mgr.submit(quick_specs())
            assert mgr.pending_cells == 1
            with pytest.raises(QueueFull) as excinfo:
                mgr.submit(quick_specs(workloads=("ATT",)))
            assert (excinfo.value.pending, excinfo.value.limit) == (1, 1)
            assert mgr.metrics.jobs_rejected.value == 1
            # The refused job left no trace in the table or the accounting.
            assert len(mgr.list_jobs()) == 1
            assert mgr.pending_cells == 1
            mgr.cancel(admitted.id)
        finally:
            mgr.shutdown(drain=False)

    def test_cache_hits_bypass_admission(self, tmp_path):
        """Warm cells cost no queue capacity: even queue_limit=0 serves them."""
        cache_dir = tmp_path / "cache"
        run_cells(quick_specs(), cache_dir=cache_dir)
        mgr = JobManager(jobs=1, cache_dir=cache_dir, queue_limit=0, cell_fn=_explode)
        try:
            job = mgr.submit(quick_payload())
            assert job.state == DONE
            assert job.cached == 1
            with pytest.raises(QueueFull):
                mgr.submit(quick_payload(workloads=("ATT",)))
        finally:
            mgr.shutdown(drain=False)


class TestCancelAndFailure:
    def test_cancel_releases_queue_capacity(self, tmp_path):
        mgr = JobManager(jobs=1, cache_dir=None, queue_limit=2, cell_fn=_sleepy)
        try:
            job = mgr.submit(quick_payload(kinds=("afraid", "raid0")))
            assert mgr.pending_cells == 2
            cancelled = mgr.cancel(job.id)
            assert cancelled is job
            assert job.state == CANCELLED
            assert mgr.pending_cells == 0
            assert mgr.health()["jobs_active"] == 0
            assert mgr.metrics.jobs_cancelled.value == 1
            assert job.events[-1]["event"] == "job_cancelled"
        finally:
            mgr.shutdown(drain=False)

    def test_cancel_unknown_job_returns_none(self, manager):
        assert manager.cancel("job-999999") is None

    def test_cancel_terminal_job_is_a_no_op(self, manager):
        job = manager.submit(quick_payload())
        assert job.wait(WAIT_S) == DONE
        assert manager.cancel(job.id) is job
        assert job.state == DONE

    def test_cell_exception_fails_the_job(self, tmp_path):
        mgr = JobManager(jobs=1, cache_dir=None, cell_fn=_explode)
        try:
            job = mgr.submit(quick_payload())
            assert job.wait(WAIT_S) == FAILED
            assert "hplajw/afraid" in job.error
            assert "RuntimeError" in job.error
            kinds = [e["event"] for e in job.events]
            assert "cell_failed" in kinds
            assert kinds[-1] == "job_failed"
            assert mgr.metrics.jobs_failed.value == 1
            assert mgr.pending_cells == 0
        finally:
            mgr.shutdown(drain=False)


class TestHealthAndPrune:
    def test_health_shape(self, manager):
        health = manager.health()
        assert health["status"] == "ok"
        assert health["queue_limit"] == 1024
        assert health["pending_cells"] == 0
        assert health["worker_restarts"] == 0

    def test_drain_flips_health_status(self, tmp_path):
        mgr = JobManager(jobs=1, cache_dir=tmp_path / "cache")
        mgr.shutdown(drain=True)
        assert mgr.health()["status"] == "draining"

    def test_cache_pruned_at_init(self, tmp_path):
        cache_dir = tmp_path / "cache"
        stale = ResultCache(cache_dir)
        victim = stale.root / ("f" * 64 + ".json")
        victim.write_text("{}" + " " * (1 << 20))
        mgr = JobManager(jobs=1, cache_dir=cache_dir, cache_max_bytes=1 << 19)
        try:
            assert not victim.exists()
        finally:
            mgr.shutdown(drain=False)

    def test_cache_pruned_after_job_completion(self, tmp_path):
        cache_dir = tmp_path / "cache"
        mgr = JobManager(jobs=1, cache_dir=cache_dir, cache_max_bytes=1 << 19)
        try:
            # An oversized stale entry appears while the daemon is up; the
            # byte cap evicts it (oldest first) once the next job finishes.
            victim = mgr.cache.root / ("f" * 64 + ".json")
            victim.write_text("{}" + " " * (1 << 20))
            job = mgr.submit(quick_payload())
            assert job.wait(WAIT_S) == DONE
            # The prune runs on the dispatcher thread just after the DONE
            # notification, so give it a beat.
            deadline = time.monotonic() + 10.0
            while victim.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert not victim.exists()
            # The fresh result survives: it is the newest entry.
            key = cache_key(quick_specs()[0])
            assert mgr.cache.load(key) is not None
        finally:
            mgr.shutdown(drain=False)
