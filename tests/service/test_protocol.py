"""The serve daemon's wire vocabulary: payload parsing and validation."""

import pytest

from repro.harness.runner import CellSpec, PolicySpec, ladder_specs
from repro.service import (
    ProtocolError,
    cell_label,
    parse_cell,
    parse_job_payload,
    parse_policy,
    spec_to_payload,
)


class TestParsePolicy:
    def test_bare_string(self):
        assert parse_policy("afraid") == PolicySpec("afraid")
        assert parse_policy("raid5") == PolicySpec("raid5")

    def test_mapping_with_target(self):
        spec = parse_policy({"kind": "mttdl", "mttdl_target": 1e7})
        assert spec == PolicySpec("mttdl", mttdl_target=1e7)

    def test_target_coerced_from_string(self):
        assert parse_policy({"kind": "mttdl", "mttdl_target": "1e6"}).mttdl_target == 1e6

    def test_unknown_keys_rejected(self):
        with pytest.raises(ProtocolError, match="unknown policy keys"):
            parse_policy({"kind": "afraid", "bogus": 1})

    def test_kind_required(self):
        with pytest.raises(ProtocolError, match='"kind"'):
            parse_policy({"mttdl_target": 1e7})

    def test_invalid_kind_surfaces_as_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse_policy("raid99")

    def test_mttdl_without_target_surfaces_as_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse_policy("mttdl")

    def test_non_mapping_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_policy(["afraid"])


class TestParseCell:
    def test_minimal(self):
        spec = parse_cell({"workload": "hplajw", "policy": "afraid"})
        assert spec.workload == "hplajw"
        assert spec.policy == PolicySpec("afraid")

    def test_defaults_merge_and_cell_overrides_win(self):
        defaults = {"duration_s": 30.0, "seed": 7, "policy": "afraid"}
        spec = parse_cell({"workload": "ATT", "seed": 9}, defaults)
        assert (spec.duration_s, spec.seed) == (30.0, 9)

    def test_field_coercion(self):
        spec = parse_cell(
            {"workload": "hplajw", "policy": "afraid", "duration_s": "5", "ndisks": 7.0}
        )
        assert spec.duration_s == 5.0
        assert spec.ndisks == 7

    def test_unknown_keys_rejected(self):
        with pytest.raises(ProtocolError, match="unknown cell keys"):
            parse_cell({"workload": "hplajw", "policy": "afraid", "colour": "red"})

    def test_unknown_workload_rejected(self):
        with pytest.raises(ProtocolError, match="unknown workload"):
            parse_cell({"workload": "nosuch", "policy": "afraid"})

    def test_workload_and_policy_required(self):
        with pytest.raises(ProtocolError, match='"workload"'):
            parse_cell({"policy": "afraid"})
        with pytest.raises(ProtocolError, match='"policy"'):
            parse_cell({"workload": "hplajw"})

    def test_uncoercible_field_rejected(self):
        with pytest.raises(ProtocolError, match="duration_s"):
            parse_cell({"workload": "hplajw", "policy": "afraid", "duration_s": "soon"})

    def test_round_trips_through_spec_to_payload(self):
        for spec in (
            CellSpec(workload="hplajw", policy=PolicySpec("afraid"), seed=9),
            CellSpec(workload="ATT", policy=PolicySpec("mttdl", mttdl_target=1e6)),
        ):
            assert parse_cell(spec_to_payload(spec)) == spec


class TestParseJobPayload:
    def test_explicit_cells_with_defaults(self):
        specs = parse_job_payload(
            {
                "cells": [
                    {"workload": "hplajw", "policy": "afraid"},
                    {"workload": "ATT", "policy": {"kind": "mttdl", "mttdl_target": 1e7}},
                ],
                "duration_s": 12.0,
                "seed": 5,
            }
        )
        assert [spec.workload for spec in specs] == ["hplajw", "ATT"]
        assert all(spec.duration_s == 12.0 and spec.seed == 5 for spec in specs)

    def test_ladder_shape_matches_ladder_specs(self):
        payload = {"workloads": ["hplajw", "ATT"], "targets": [1e7],
                   "duration_s": 8.0, "seed": 3}
        assert parse_job_payload(payload) == ladder_specs(
            ["hplajw", "ATT"], [1e7], duration_s=8.0, seed=3
        )

    def test_ladder_can_drop_baselines(self):
        specs = parse_job_payload(
            {"workloads": ["hplajw"], "include_raid5": False, "include_raid0": False}
        )
        assert [spec.policy.kind for spec in specs] == ["afraid"]

    def test_exactly_one_shape_required(self):
        with pytest.raises(ProtocolError, match="exactly one"):
            parse_job_payload({"duration_s": 5.0})
        with pytest.raises(ProtocolError, match="exactly one"):
            parse_job_payload({"cells": [], "workloads": ["hplajw"]})

    def test_empty_cells_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_job_payload({"cells": []})

    def test_empty_workloads_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_job_payload({"workloads": []})

    def test_unknown_job_keys_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job keys"):
            parse_job_payload({"workloads": ["hplajw"], "priority": "high"})

    def test_unknown_workload_in_ladder_rejected(self):
        with pytest.raises(ProtocolError, match="unknown workload"):
            parse_job_payload({"workloads": ["nosuch"]})

    def test_bad_targets_rejected(self):
        with pytest.raises(ProtocolError, match="targets"):
            parse_job_payload({"workloads": ["hplajw"], "targets": "1e7"})
        with pytest.raises(ProtocolError, match="targets"):
            parse_job_payload({"workloads": ["hplajw"], "targets": ["soon"]})

    def test_non_object_payload_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_job_payload([{"workload": "hplajw"}])


class TestCellLabel:
    def test_matches_sweep_grid_key(self):
        spec = CellSpec(workload="hplajw", policy=PolicySpec("afraid"))
        assert cell_label(spec) == f"{spec.key[0]}/{spec.key[1]}"

    def test_mttdl_label_carries_target(self):
        spec = CellSpec(workload="ATT", policy=PolicySpec("mttdl", mttdl_target=1e7))
        assert cell_label(spec) == "ATT/MTTDL_1e+07"
