"""The HTTP front end: routes, status codes, NDJSON streaming, metrics."""

import contextlib
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.harness.runner import run_cell, run_cells
from repro.service import (
    JobManager,
    ServiceClient,
    ServiceError,
    ServiceServer,
)
from tests.service.test_manager import quick_payload, quick_specs


def _sleepy(spec):
    time.sleep(1.5)
    return run_cell(spec)


@contextlib.contextmanager
def serving(manager):
    """A live daemon on an ephemeral port, torn down hard afterwards."""
    server = ServiceServer(("127.0.0.1", 0), manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(server.url)
    finally:
        server.shutdown()
        server.server_close()
        manager.shutdown(drain=False)
        thread.join(5.0)


@pytest.fixture
def client(tmp_path):
    with serving(JobManager(jobs=2, cache_dir=tmp_path / "cache")) as client:
        yield client


class TestHealthAndMetrics:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["jobs_total"] == 0
        assert health["queue_limit"] == 1024

    def test_metrics_exposition(self, client):
        client.wait(client.submit(quick_payload())["id"])
        text = client.metrics_text()
        assert "# TYPE service_jobs_submitted counter" in text
        assert "service_jobs_submitted 1" in text
        assert "service_cell_latency_seconds" in text


class TestJobRoutes:
    def test_submit_wait_result(self, client):
        snapshot = client.submit(quick_payload(kinds=("afraid", "raid0")))
        assert snapshot["state"] in ("queued", "running")
        final = client.wait(snapshot["id"])
        assert final["state"] == "done"
        assert final["cells_completed"] == 2
        result = client.result(snapshot["id"])
        assert set(result["cells"]) == {"hplajw/afraid", "hplajw/raid0"}
        cell = result["cells"]["hplajw/afraid"]
        assert cell["workload"] == "hplajw"
        assert cell["io_time"]["mean"] > 0

    def test_results_match_local_sweep_over_http(self, client, tmp_path):
        """Byte-identity survives the wire: the raw served JSON equals the
        sweep-cache encoding of the same cell (``"inf"`` strings and all)."""
        from repro.harness.runner import result_to_payload

        spec = quick_specs(kinds=("raid0",))[0]  # raid0: infinite-MTTDL fields
        local = run_cells([spec], cache_dir=tmp_path / "sweep-cache")
        job_id = client.submit(quick_payload(kinds=("raid0",)))["id"]
        client.wait(job_id)
        with urllib.request.urlopen(
            f"{client.base_url}/jobs/{job_id}/result", timeout=10
        ) as response:
            raw = json.loads(response.read())
        served = raw["cells"]["hplajw/raid0"]
        expected = result_to_payload(local.results[spec.key])
        assert json.dumps(served, sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    def test_jobs_listing(self, client):
        first = client.submit(quick_payload())["id"]
        client.wait(first)
        jobs = client.jobs()
        assert [job["id"] for job in jobs] == [first]

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("job-424242")
        assert excinfo.value.status == 404

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_bad_payload_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"cells": []})
        assert excinfo.value.status == 400
        assert "non-empty" in str(excinfo.value)

    def test_non_json_body_400(self, client):
        request = urllib.request.Request(
            f"{client.base_url}/jobs", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_result_before_terminal_409(self, tmp_path):
        with serving(
            JobManager(jobs=1, cache_dir=None, cell_fn=_sleepy)
        ) as client:
            job_id = client.submit(quick_payload())["id"]
            with pytest.raises(ServiceError) as excinfo:
                client.result(job_id)
            assert excinfo.value.status == 409
            client.cancel(job_id)

    def test_delete_cancels(self, tmp_path):
        with serving(
            JobManager(jobs=1, cache_dir=None, cell_fn=_sleepy)
        ) as client:
            job_id = client.submit(quick_payload())["id"]
            assert client.cancel(job_id)["state"] == "cancelled"
            assert client.health()["jobs_active"] == 0


class TestBackpressureOverHttp:
    def test_429_with_retry_headers(self, tmp_path):
        with serving(
            JobManager(jobs=1, cache_dir=None, queue_limit=0)
        ) as client:
            body = json.dumps(quick_payload()).encode()
            request = urllib.request.Request(
                f"{client.base_url}/jobs", data=body, method="POST",
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            error = excinfo.value
            assert error.code == 429
            assert error.headers["Retry-After"] == "1"
            assert error.headers["X-Queue-Limit"] == "0"

    def test_submit_with_backoff_gives_up_after_retries(self, tmp_path):
        with serving(
            JobManager(jobs=1, cache_dir=None, queue_limit=0)
        ) as client:
            started = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                client.submit_with_backoff(
                    quick_payload(), retries=3, backoff_s=0.01
                )
            assert excinfo.value.status == 429
            assert time.monotonic() - started >= 0.02  # it did back off

    def test_warm_cells_served_even_at_zero_capacity(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_cells(quick_specs(), cache_dir=cache_dir)
        with serving(
            JobManager(jobs=1, cache_dir=cache_dir, queue_limit=0)
        ) as client:
            snapshot = client.submit_with_backoff(quick_payload())
            assert snapshot["state"] == "done"
            assert snapshot["cells_cached"] == 1


class TestEventStreaming:
    def test_stream_follows_to_completion(self, client):
        job_id = client.submit(quick_payload(kinds=("afraid", "raid0")))["id"]
        events = list(client.stream_events(job_id))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "submitted"
        assert kinds[-1] == "job_completed"
        assert kinds.count("cell_completed") == 2
        assert [event["seq"] for event in events] == list(range(len(events)))
        snapshot = next(e for e in events if e["event"] == "cell_completed")
        assert "cache_hit_ratio" in snapshot["metrics"]

    def test_since_resumes_and_nofollow_returns(self, client):
        job_id = client.submit(quick_payload())["id"]
        client.wait(job_id)
        everything = list(client.stream_events(job_id, follow=False))
        tail = list(client.stream_events(job_id, since=1, follow=False))
        assert tail == everything[1:]
        assert list(client.stream_events(job_id, since=len(everything))) == []

    def test_bad_since_400(self, client):
        job_id = client.submit(quick_payload())["id"]
        client.wait(job_id)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{client.base_url}/jobs/{job_id}/events?since=soon", timeout=10
            )
        assert excinfo.value.code == 400


class TestTimelineRoute:
    def test_timeline_ndjson_tells_the_job_story(self, client):
        job_id = client.submit(quick_payload())["id"]
        client.wait(job_id)
        with urllib.request.urlopen(f"{client.base_url}/timeline", timeout=10) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            lines = response.read().decode().strip().split("\n")
        events = [json.loads(line) for line in lines]
        kinds = [event["kind"] for event in events]
        assert "service.job_submitted" in kinds
        assert "service.cell_completed" in kinds
        assert "service.job_completed" in kinds
        # Every non-root event is cause-linked back to its job's submit.
        root = next(e for e in events if e["kind"] == "service.job_submitted")
        for event in events:
            if event["kind"] != "service.job_submitted":
                assert event["cause"] == root["id"]
        assert [event["seq"] for event in events] == sorted(e["seq"] for e in events)

    def test_since_filters_by_seq(self, client):
        client.wait(client.submit(quick_payload())["id"])
        with urllib.request.urlopen(f"{client.base_url}/timeline", timeout=10) as response:
            total = len(response.read().decode().strip().split("\n"))
        with urllib.request.urlopen(
            f"{client.base_url}/timeline?since=1", timeout=10
        ) as response:
            events = [
                json.loads(line)
                for line in response.read().decode().strip().split("\n")
            ]
        assert len(events) == total - 1
        assert all(event["seq"] >= 1 for event in events)

    def test_bad_since_400(self, client):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{client.base_url}/timeline?since=banana", timeout=10)
        assert excinfo.value.code == 400

    def test_empty_timeline_is_empty_body(self, client):
        with urllib.request.urlopen(f"{client.base_url}/timeline", timeout=10) as response:
            assert response.read() == b""
