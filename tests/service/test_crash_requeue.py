"""Crash tolerance: a worker dying mid-cell must not lose the job.

The crashing cell functions kill the worker *process* with ``os._exit``
— the same failure shape as an OOM-kill or segfault — which breaks the
whole ``ProcessPoolExecutor``.  The executor must rebuild the pool,
requeue the in-flight cell, and still deliver a result whose payload is
identical to a clean run's.
"""

import json
import os
import pathlib
import time

from repro.harness.runner import (
    CellExecutor,
    ResultCache,
    cache_key,
    result_to_payload,
    run_cell,
)
from repro.service import DONE, FAILED, JobManager
from tests.service.test_manager import WAIT_S, quick_specs

#: Where the crash-once marker lives; workers inherit this via fork.
_MARKER_ENV = "AFRAID_TEST_CRASH_MARKER"


def crash_once_then_run(spec):
    """First invocation kills the worker mid-cell; retries run normally."""
    marker = pathlib.Path(os.environ[_MARKER_ENV])
    if not marker.exists():
        marker.touch()
        os._exit(1)
    return run_cell(spec)


def crash_always(spec):
    os._exit(1)


class TestManagerSurvivesWorkerCrash:
    def test_job_completes_after_worker_death(self, tmp_path, monkeypatch):
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path / "crashed-once"))
        spec = quick_specs()[0]
        mgr = JobManager(
            jobs=1, cache_dir=tmp_path / "cache", cell_fn=crash_once_then_run
        )
        try:
            job = mgr.submit([spec])
            assert job.wait(WAIT_S) == DONE

            # The cell took more than one attempt and the pool was rebuilt.
            record = job.cells[0]
            assert record["attempts"] == 2
            assert job.retried == 1
            assert mgr.executor.worker_restarts == 1
            assert mgr.metrics.registry.value("service_worker_restarts") == 1
            assert mgr.metrics.cell_retries.value == 1
            retried = [e for e in job.events if e["event"] == "cell_completed"]
            assert retried[0]["attempts"] == 2
            assert retried[0]["metrics"]["worker_restarts"] == 1

            # Cache consistency: the post-crash result is byte-identical to
            # a clean in-process run, and it was written through to disk.
            clean = result_to_payload(run_cell(spec))
            assert json.dumps(record["result"], sort_keys=True) == json.dumps(
                clean, sort_keys=True
            )
            assert mgr.cache.load(cache_key(spec)) is not None

            # A resubmit is now a pure cache hit — no pool involved.
            warm = mgr.submit([spec])
            assert warm.state == DONE
            assert warm.cached == 1
        finally:
            mgr.shutdown(drain=False)

    def test_persistent_crasher_fails_after_max_attempts(self, tmp_path):
        mgr = JobManager(
            jobs=1, cache_dir=None, cell_fn=crash_always, max_attempts=2
        )
        try:
            job = mgr.submit(quick_specs())
            assert job.wait(WAIT_S) == FAILED
            assert "worker crashed 2 times" in job.error
            assert mgr.executor.worker_restarts >= 2
            assert mgr.pending_cells == 0  # accounting was released
        finally:
            mgr.shutdown(drain=False)


class TestExecutorLevelRequeue:
    def test_sibling_cells_survive_one_crash(self, tmp_path, monkeypatch):
        """One worker dying breaks every in-flight future; *all* of them
        must be requeued, not just the crashing cell's."""
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path / "crashed-once"))
        specs = quick_specs(kinds=("afraid", "raid0"))
        cache = ResultCache(tmp_path / "cache")
        executor = CellExecutor(
            jobs=2, cache=cache, cell_fn=crash_once_then_run
        ).start()
        outcomes = []
        try:
            for spec in specs:
                executor.submit(spec, outcomes.append)
            deadline = time.monotonic() + WAIT_S
            while len(outcomes) < len(specs) and time.monotonic() < deadline:
                time.sleep(0.05)
        finally:
            executor.shutdown(drain=True)
        assert len(outcomes) == len(specs)
        assert all(o.error is None for o in outcomes)
        assert executor.worker_restarts == 1
        assert max(o.attempts for o in outcomes) >= 2
        # Write-through happened for every cell despite the restart.
        for spec in specs:
            assert cache.load(cache_key(spec)) is not None
