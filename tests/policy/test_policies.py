"""Tests for the parity-update policies (against a stub array view)."""

import pytest

from repro.availability import TABLE_1, raid5_mttdl_catastrophic
from repro.policy import (
    AlwaysRaid5Policy,
    BaselineAfraidPolicy,
    DirtyStripeThresholdPolicy,
    EagerScrubPolicy,
    MttdlTargetPolicy,
    NeverScrubPolicy,
    WriteMode,
)


class StubArray:
    """A minimal ArrayView for policy unit tests."""

    def __init__(self, ndisks=5):
        self._ndisks = ndisks
        self.dirty = 0
        self.fraction = 0.0
        self.idle = True
        self.scrub_requests = []

    @property
    def now(self):
        return 0.0

    @property
    def ndisks(self):
        return self._ndisks

    @property
    def dirty_stripe_count(self):
        return self.dirty

    @property
    def is_idle(self):
        return self.idle

    def unprotected_fraction_so_far(self):
        return self.fraction

    def request_scrub(self, force=False):
        self.scrub_requests.append(force)


def attach(policy, **kwargs):
    array = StubArray(**kwargs)
    policy.attach(array)
    return array


class TestBaseline:
    def test_always_afraid_mode(self):
        policy = BaselineAfraidPolicy()
        attach(policy)
        assert policy.write_mode() is WriteMode.AFRAID
        assert policy.may_scrub_now()
        assert not policy.scrub_despite_load()


class TestRaid0Model:
    def test_never_scrubs(self):
        policy = NeverScrubPolicy()
        attach(policy)
        assert policy.write_mode() is WriteMode.AFRAID
        assert not policy.may_scrub_now()


class TestRaid5:
    def test_always_rmw(self):
        policy = AlwaysRaid5Policy()
        attach(policy)
        assert policy.write_mode() is WriteMode.RAID5


class TestThreshold:
    def test_validation(self):
        with pytest.raises(ValueError):
            DirtyStripeThresholdPolicy(max_dirty_stripes=0)

    def test_forces_scrub_above_threshold(self):
        policy = DirtyStripeThresholdPolicy(max_dirty_stripes=20)
        array = attach(policy)
        array.dirty = 20
        policy.on_stripes_marked()
        assert array.scrub_requests == []  # at threshold: not yet
        array.dirty = 21
        policy.on_stripes_marked()
        assert array.scrub_requests == [True]
        assert policy.scrub_despite_load()

    def test_force_clears_when_debt_drains(self):
        policy = DirtyStripeThresholdPolicy(max_dirty_stripes=5)
        array = attach(policy)
        array.dirty = 6
        policy.on_stripes_marked()
        assert policy.scrub_despite_load()
        array.dirty = 2
        policy.on_stripes_marked()
        assert not policy.scrub_despite_load()


class TestMttdlTarget:
    def test_validation(self):
        with pytest.raises(ValueError):
            MttdlTargetPolicy(target_h=0)

    def test_afraid_while_meeting_target(self):
        policy = MttdlTargetPolicy(target_h=1e7, params=TABLE_1)
        array = attach(policy)
        array.fraction = 0.0  # fully protected so far: infinite MTTDL
        assert policy.write_mode() is WriteMode.AFRAID
        assert array.scrub_requests == []

    def test_reverts_to_raid5_when_missing_target(self):
        # Target just below pure RAID 5: any exposure at all misses it.
        raid5 = raid5_mttdl_catastrophic(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h)
        policy = MttdlTargetPolicy(target_h=raid5 * 0.99, params=TABLE_1)
        array = attach(policy)
        array.fraction = 0.5
        assert policy.write_mode() is WriteMode.RAID5
        assert array.scrub_requests == [True]  # drains the parity debt too
        assert policy.scrub_despite_load()

    def test_achieved_mttdl_decreases_with_exposure(self):
        policy = MttdlTargetPolicy(target_h=1e6, params=TABLE_1)
        array = attach(policy)
        array.fraction = 0.01
        low_exposure = policy.achieved_mttdl_h()
        array.fraction = 0.5
        high_exposure = policy.achieved_mttdl_h()
        assert high_exposure < low_exposure

    def test_loose_target_tolerates_exposure(self):
        policy = MttdlTargetPolicy(target_h=1e5, params=TABLE_1)
        array = attach(policy)
        array.fraction = 0.9  # MTTDL ≈ 2e6/5/0.9 ≈ 4.4e5 > 1e5
        assert policy.write_mode() is WriteMode.AFRAID

    def test_describe_includes_target(self):
        assert MttdlTargetPolicy(target_h=2e6).describe() == "MTTDL_2e+06"


class TestEager:
    def test_scrubs_despite_load_and_requests_immediately(self):
        policy = EagerScrubPolicy()
        array = attach(policy)
        assert policy.scrub_despite_load()
        policy.on_stripes_marked()
        assert array.scrub_requests == [True]
