"""Tests for summary statistics."""


import numpy as np

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import PerfCounters, Summary, geometric_mean, percentile, ratio_summary


class TestSummary:
    def test_empty(self):
        summary = Summary.of([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_basic(self):
        summary = Summary.of([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    @given(values=st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_ordering_invariants(self, values):
        summary = Summary.of(values)
        assert summary.minimum <= summary.median <= summary.maximum
        assert summary.median <= summary.p95 + 1e-9
        # Tolerate one ulp of float summation error around the extremes.
        slack = 1e-9 * max(1.0, summary.maximum)
        assert summary.minimum - slack <= summary.mean <= summary.maximum + slack


class TestPercentile:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_range_check(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 50) == pytest.approx(5.0)
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(values=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_bounded_by_extremes(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @given(values=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_log_linearity(self, values):
        doubled = [2.0 * value for value in values]
        assert geometric_mean(doubled) == pytest.approx(2.0 * geometric_mean(values), rel=1e-9)


class TestRatioSummary:
    def test_paper_style_speedup(self):
        raid5 = [40.0, 80.0, 120.0]
        afraid = [10.0, 20.0, 30.0]
        assert ratio_summary(raid5, afraid) == pytest.approx(4.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ratio_summary([1.0], [1.0, 2.0])


class TestPerfCounters:
    def test_counts_accumulate(self):
        counters = PerfCounters()
        counters.count("events")
        counters.count("events", 9)
        assert counters.counts["events"] == 10

    def test_phase_times_accumulate(self):
        counters = PerfCounters()
        with counters.phase("replay"):
            pass
        with counters.phase("replay"):
            pass
        assert counters.timings_s["replay"] >= 0.0
        assert set(counters.timings_s) == {"replay"}

    def test_phase_records_even_on_exception(self):
        counters = PerfCounters()
        with pytest.raises(RuntimeError):
            with counters.phase("boom"):
                raise RuntimeError()
        assert "boom" in counters.timings_s

    def test_merge(self):
        a, b = PerfCounters(), PerfCounters()
        a.count("cells", 2)
        b.count("cells", 3)
        b.add_time("replay", 1.5)
        a.merge(b)
        assert a.counts["cells"] == 5
        assert a.timings_s["replay"] == pytest.approx(1.5)

    def test_snapshot_is_a_copy(self):
        counters = PerfCounters()
        counters.count("x")
        snap = counters.snapshot()
        snap["counts"]["x"] = 99
        assert counters.counts["x"] == 1

    def test_rows_render(self):
        counters = PerfCounters()
        counters.count("ios", 7)
        counters.add_time("replay", 0.25)
        rows = counters.rows()
        assert ["ios", "7"] in rows
        assert ["replay (s)", "0.250"] in rows


class TestNumpyInputs:
    """The original footgun: ``if not values`` raises on numpy arrays
    ("truth value of an array is ambiguous") and silently treats a
    0-d/empty array wrong.  Everything must take ``len()``-style inputs."""

    def test_summary_of_empty_array(self):
        summary = Summary.of(np.array([]))
        assert summary.count == 0
        assert summary.mean == 0.0
        assert summary.maximum == 0.0

    def test_summary_of_array_matches_list(self):
        values = [0.004, 0.001, 0.009]
        assert Summary.of(np.array(values)) == Summary.of(values)

    def test_percentile_empty_array_rejected(self):
        with pytest.raises(ValueError, match="empty sample"):
            percentile(np.array([]), 50.0)

    def test_percentile_of_array(self):
        assert percentile(np.array([1.0, 3.0]), 50.0) == pytest.approx(2.0)

    def test_geometric_mean_empty_array_rejected(self):
        with pytest.raises(ValueError, match="empty sample"):
            geometric_mean(np.array([]))

    def test_geometric_mean_of_array(self):
        assert geometric_mean(np.array([2.0, 8.0])) == pytest.approx(4.0)
