"""Tests for the parity-logging comparator."""

import pytest

from repro.array.request import ArrayRequest
from repro.disk import IoKind, toy_disk
from repro.ext.parity_logging import ParityLogConfig, ParityLoggingArray
from repro.sim import AllOf, Simulator


def make_array(sim, nvram=4096, log=16 * 1024, idle_threshold_s=1e9, ndisks=5):
    disks = [toy_disk(sim, name=f"d{i}", cylinders=128) for i in range(ndisks)]
    config = ParityLogConfig(nvram_buffer_bytes=nvram, log_region_bytes=log)
    return ParityLoggingArray(sim, disks, stripe_unit_sectors=8, config=config, idle_threshold_s=idle_threshold_s)


def run_write(sim, array, offset=0, nsectors=4):
    request = ArrayRequest(IoKind.WRITE, offset, nsectors)
    done = array.submit(request)
    sim.run_until_triggered(done)
    return request


class TestCriticalPath:
    def test_small_write_is_two_foreground_ios(self):
        """Parity logging: read old data + write new data (AFRAID: 1)."""
        sim = Simulator()
        array = make_array(sim)
        run_write(sim, array)
        assert array.stats.foreground_ios == 2
        assert array.stats.background_ios == 0  # image still in NVRAM

    def test_image_buffered_in_nvram(self):
        sim = Simulator()
        array = make_array(sim)
        run_write(sim, array, nsectors=4)
        assert array.pending_log_bytes == 4 * array.sector_bytes

    def test_full_redundancy_is_preserved_in_principle(self):
        """The log IS redundancy: pending bytes are debt, not exposure."""
        sim = Simulator()
        array = make_array(sim)
        run_write(sim, array)
        # (No unprotected-time tracker exists on this model by design.)
        assert array.pending_log_bytes > 0


class TestLogHierarchy:
    def test_nvram_fill_triggers_flush(self):
        sim = Simulator()
        array = make_array(sim, nvram=4 * 512)  # 4-sector fill buffer
        run_write(sim, array, offset=0, nsectors=4)  # fills the buffer exactly
        assert array.stats.log_flushes == 0
        run_write(sim, array, offset=64, nsectors=4)  # same parity disk? maybe not
        run_write(sim, array, offset=0, nsectors=4)  # definitely same disk as 1st
        assert array.stats.log_flushes >= 1

    def test_log_fill_triggers_reclaim(self):
        sim = Simulator()
        array = make_array(sim, nvram=2 * 512, log=8 * 512)
        # Hammer one stripe so a single parity disk's log fills.
        for _ in range(12):
            run_write(sim, array, offset=0, nsectors=2)
        assert array.stats.reclaims >= 1

    def test_idle_flush_drains_nvram(self):
        sim = Simulator()
        array = make_array(sim, idle_threshold_s=0.05)
        run_write(sim, array)
        assert array.pending_log_bytes > 0
        in_nvram = sum(array._nvram_fill)
        assert in_nvram > 0
        sim.run(until=sim.now + 1.0)
        assert sum(array._nvram_fill) == 0  # flushed to the on-disk log
        assert array.stats.log_flushes >= 1


class TestComparison:
    def test_positioning_between_afraid_and_raid5_under_load(self):
        """The paper's §2 positioning: parity logging saves the parity
        I/Os (helps throughput under load) but keeps the old-data
        pre-read in the critical path (so AFRAID stays ahead)."""
        from repro.array import build_array
        from repro.disk import toy_disk as factory
        from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy

        def burst_mean_time(build):
            sim = Simulator()
            array = build(sim)
            events = [array.submit(ArrayRequest(IoKind.WRITE, i * 32, 4)) for i in range(24)]
            sim.run_until_triggered(AllOf(sim, events))
            times = [event.value.io_time for event in events]
            return sum(times) / len(times)

        t_plog = burst_mean_time(lambda sim: make_array(sim, nvram=256 * 1024, log=1024 * 1024))
        t_afraid = burst_mean_time(
            lambda sim: build_array(sim, BaselineAfraidPolicy(), disk_factory=factory,
                                    stripe_unit_sectors=8, idle_threshold_s=1e9)
        )
        t_raid5 = burst_mean_time(
            lambda sim: build_array(sim, AlwaysRaid5Policy(), disk_factory=factory,
                                    stripe_unit_sectors=8)
        )
        assert t_afraid < t_plog < t_raid5


class TestValidation:
    def test_needs_room_for_data(self):
        sim = Simulator()
        disks = [toy_disk(sim, cylinders=16, heads=1, spt=8) for _ in range(3)]
        # Log region as large as the whole disk: no room left for data.
        with pytest.raises(ValueError):
            ParityLoggingArray(sim, disks, stripe_unit_sectors=8,
                               config=ParityLogConfig(log_region_bytes=16 * 8 * 512))

    def test_out_of_range_rejected(self):
        sim = Simulator()
        array = make_array(sim)
        with pytest.raises(ValueError):
            array.submit(ArrayRequest(IoKind.READ, array.layout.total_data_sectors, 1))

    def test_many_concurrent_writes_complete(self):
        sim = Simulator()
        array = make_array(sim, nvram=2048, log=8192)
        events = [array.submit(ArrayRequest(IoKind.WRITE, i * 16, 4)) for i in range(30)]
        sim.run_until_triggered(AllOf(sim, events))
        assert array.stats.writes == 30
