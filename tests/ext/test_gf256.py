"""Tests for GF(2^8) arithmetic and Reed-Solomon recovery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ext.gf256 import GF256

byte = st.integers(min_value=0, max_value=255)
nonzero_byte = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(a=byte, b=byte)
    @settings(max_examples=200, deadline=None)
    def test_mul_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(a=byte, b=byte, c=byte)
    @settings(max_examples=200, deadline=None)
    def test_mul_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(a=byte, b=byte, c=byte)
    @settings(max_examples=200, deadline=None)
    def test_distributive(self, a, b, c):
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    @given(a=byte)
    @settings(max_examples=100, deadline=None)
    def test_identities(self, a):
        assert GF256.mul(a, 1) == a
        assert GF256.mul(a, 0) == 0
        assert GF256.add(a, a) == 0  # characteristic 2

    @given(a=nonzero_byte)
    @settings(max_examples=255, deadline=None)
    def test_inverse(self, a):
        assert GF256.mul(a, GF256.inv(a)) == 1

    @given(a=byte, b=nonzero_byte)
    @settings(max_examples=200, deadline=None)
    def test_division_roundtrip(self, a, b):
        assert GF256.mul(GF256.div(a, b), b) == a

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)
        with pytest.raises(ZeroDivisionError):
            GF256.div(1, 0)

    def test_generator_has_full_order(self):
        """g generates the whole multiplicative group (order 255)."""
        seen = set()
        value = 1
        for _ in range(255):
            seen.add(value)
            value = GF256.mul(value, GF256.generator)
        assert len(seen) == 255
        assert value == 1  # g^255 = 1


class TestVectorOps:
    @given(coefficient=byte, data=st.binary(min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_mul_bytes_matches_scalar(self, coefficient, data):
        array = np.frombuffer(data, dtype=np.uint8)
        result = GF256.mul_bytes(coefficient, array)
        expected = [GF256.mul(coefficient, int(value)) for value in array]
        assert list(result) == expected

    def test_mul_bytes_type_check(self):
        with pytest.raises(TypeError):
            GF256.mul_bytes(3, np.zeros(4, dtype=np.uint16))


def random_units(seed, n_units=4, size=32):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=size, dtype=np.uint8) for _ in range(n_units)]


class TestSyndromesAndRecovery:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_p_is_xor(self, seed):
        units = random_units(seed)
        p, _q = GF256.syndromes(units)
        expected = units[0] ^ units[1] ^ units[2] ^ units[3]
        assert np.array_equal(p, expected)

    @given(seed=st.integers(min_value=0, max_value=10_000), missing=st.integers(min_value=0, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_recover_one_from_q(self, seed, missing):
        units = random_units(seed)
        _p, q = GF256.syndromes(units)
        survivors = [(i, u) for i, u in enumerate(units) if i != missing]
        recovered = GF256.recover_one_from_q(q, survivors, missing)
        assert np.array_equal(recovered, units[missing])

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        pair=st.tuples(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)),
    )
    @settings(max_examples=100, deadline=None)
    def test_recover_two(self, seed, pair):
        a, b = pair
        if a == b:
            return
        units = random_units(seed)
        p, q = GF256.syndromes(units)
        survivors = [(i, u) for i, u in enumerate(units) if i not in (a, b)]
        d_a, d_b = GF256.recover_two(p, q, survivors, a, b)
        assert np.array_equal(d_a, units[a])
        assert np.array_equal(d_b, units[b])

    def test_recover_two_same_index_rejected(self):
        units = random_units(1)
        p, q = GF256.syndromes(units)
        with pytest.raises(ValueError):
            GF256.recover_two(p, q, [], 1, 1)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_many_units(self, seed):
        """Recovery works for wide stripes too (16 data units)."""
        units = random_units(seed, n_units=16)
        p, q = GF256.syndromes(units)
        survivors = [(i, u) for i, u in enumerate(units) if i not in (3, 11)]
        d3, d11 = GF256.recover_two(p, q, survivors, 3, 11)
        assert np.array_equal(d3, units[3])
        assert np.array_equal(d11, units[11])
