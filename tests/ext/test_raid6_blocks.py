"""Tests for the byte-accurate dual-parity (RAID 6) functional array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ext.raid6_blocks import Raid6DataLostError, Raid6FunctionalArray
from repro.layout import Raid6Layout

SECTOR = 32


def make_array(ndisks=6, unit=4, disk_sectors=40):
    layout = Raid6Layout(ndisks=ndisks, stripe_unit_sectors=unit, disk_sectors=disk_sectors)
    return Raid6FunctionalArray(layout, sector_bytes=SECTOR)


def payload(nsectors, seed=1):
    return bytes((seed * 53 + i) % 256 for i in range(nsectors * SECTOR))


class TestBasics:
    def test_write_read_roundtrip(self):
        array = make_array()
        data = payload(6)
        array.write(3, data)
        assert array.read(3, 6) == data

    def test_fresh_write_keeps_both_syndromes(self):
        array = make_array()
        array.write(0, payload(4))
        p_ok, q_ok = array.syndromes_consistent(0)
        assert p_ok and q_ok
        assert array.redundancy_level(0) == 2

    def test_defer_q_leaves_p_fresh(self):
        array = make_array()
        array.write(0, payload(4), update_q=False)
        p_ok, q_ok = array.syndromes_consistent(0)
        assert p_ok and not q_ok
        assert array.redundancy_level(0) == 1
        assert 0 in array.stale_q_stripes

    def test_defer_both_is_afraid_exposure(self):
        array = make_array()
        array.write(0, payload(4), update_p=False, update_q=False)
        assert array.redundancy_level(0) == 0
        assert 0 in array.stale_p_stripes
        assert 0 in array.stale_q_stripes

    def test_scrub_restores_full_redundancy(self):
        array = make_array()
        array.write(0, payload(4), update_p=False, update_q=False)
        array.scrub_stripe(0)
        assert array.redundancy_level(0) == 2
        assert array.syndromes_consistent(0) == (True, True)


class TestSingleFailure:
    def test_data_disk_failure_recovers_via_p(self):
        array = make_array()
        data = payload(8, seed=2)
        array.write(0, data)
        array.fail_disk(array.layout.data_disk(0, 1))
        assert array.read(0, 8) == data

    def test_data_disk_failure_recovers_via_q_when_p_disk_also_lost(self):
        array = make_array()
        data = payload(8, seed=3)
        array.write(0, data)
        array.fail_disk(array.layout.parity_disk(0))
        array.fail_disk(array.layout.data_disk(0, 0))
        assert array.read(0, 8) == data

    def test_partial_redundancy_survives_one_failure(self):
        """Defer-Q mode: immediately single-failure tolerant (the §5 point)."""
        array = make_array()
        data = payload(4, seed=4)
        array.write(0, data, update_q=False)
        array.fail_disk(array.layout.data_disk(0, 0))
        assert array.read(0, 4) == data


class TestDoubleFailure:
    def test_two_data_disks_recover_via_p_and_q(self):
        array = make_array()
        data = payload(16, seed=5)  # full stripe 0 (4 data units x 4 sectors)
        array.write(0, data)
        array.fail_disk(array.layout.data_disk(0, 1))
        array.fail_disk(array.layout.data_disk(0, 3))
        assert array.read(0, 16) == data

    def test_double_failure_with_stale_q_loses_data(self):
        array = make_array()
        array.write(0, payload(16, seed=6), update_q=False)
        array.fail_disk(array.layout.data_disk(0, 1))
        array.fail_disk(array.layout.data_disk(0, 3))
        with pytest.raises(Raid6DataLostError):
            array.read(0, 16)

    def test_double_failure_after_scrub_recovers(self):
        array = make_array()
        data = payload(16, seed=7)
        array.write(0, data, update_q=False)
        array.scrub_stripe(0)
        array.fail_disk(array.layout.data_disk(0, 1))
        array.fail_disk(array.layout.data_disk(0, 3))
        assert array.read(0, 16) == data

    def test_triple_failure_is_fatal(self):
        array = make_array()
        array.write(0, payload(16, seed=8))
        for index in (0, 1, 2):
            array.fail_disk(array.layout.data_disk(0, index))
        with pytest.raises(Raid6DataLostError):
            array.read(0, 4)


class TestHypothesis:
    @given(
        writes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=0, max_value=255),
            ),
            min_size=1,
            max_size=8,
        ),
        victims=st.sets(st.integers(min_value=0, max_value=5), min_size=2, max_size=2),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_two_failures_recoverable_when_fresh(self, writes, victims):
        array = make_array()
        expected = {}
        for logical, nsectors, seed in writes:
            logical = min(logical, array.layout.total_data_sectors - nsectors)
            data = payload(nsectors, seed=seed)
            array.write(logical, data)
            for i in range(nsectors):
                expected[logical + i] = data[i * SECTOR : (i + 1) * SECTOR]
        for victim in victims:
            array.fail_disk(victim)
        for sector, data in expected.items():
            assert array.read(sector, 1) == data
