"""Tests for the §5 policy refinements."""

import pytest

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind
from repro.ext.policies import (
    AdaptiveStartPolicy,
    PredictiveScrubPolicy,
    RegionMap,
    RegionPolicy,
    RegionRedundancy,
)
from repro.sim import Simulator


def write(offset, nsectors=4):
    return ArrayRequest(IoKind.WRITE, offset, nsectors)


class TestRegionMap:
    def test_lookup(self):
        region_map = RegionMap(
            [
                (0, RegionRedundancy.RAID5),
                (10, RegionRedundancy.AFRAID),
                (20, RegionRedundancy.RAID0),
            ]
        )
        assert region_map.redundancy_of(0) is RegionRedundancy.RAID5
        assert region_map.redundancy_of(9) is RegionRedundancy.RAID5
        assert region_map.redundancy_of(10) is RegionRedundancy.AFRAID
        assert region_map.redundancy_of(25) is RegionRedundancy.RAID0

    def test_validation(self):
        with pytest.raises(ValueError):
            RegionMap([])
        with pytest.raises(ValueError):
            RegionMap([(5, RegionRedundancy.RAID5)])  # stripe 0 uncovered
        with pytest.raises(ValueError):
            RegionMap([(0, RegionRedundancy.RAID5), (0, RegionRedundancy.RAID0)])

    def test_uniform(self):
        region_map = RegionMap.uniform(RegionRedundancy.AFRAID)
        assert region_map.redundancy_of(12345) is RegionRedundancy.AFRAID


class TestRegionPolicy:
    def make_array(self, sim):
        region_map = RegionMap(
            [
                (0, RegionRedundancy.RAID5),
                (4, RegionRedundancy.AFRAID),
                (8, RegionRedundancy.RAID0),
            ]
        )
        return toy_array(sim, policy=RegionPolicy(region_map), with_functional=False,
                         idle_threshold_s=0.05)

    def test_raid5_region_writes_maintain_parity(self):
        sim = Simulator()
        array = self.make_array(sim)
        done = array.submit(write(0))  # stripe 0: RAID5 region
        sim.run_until_triggered(done)
        assert array.dirty_stripe_count == 0
        assert array.stats.preread_ios > 0

    def test_afraid_region_writes_defer(self):
        sim = Simulator()
        array = self.make_array(sim)
        offset = 5 * array.layout.stripe_data_sectors  # stripe 5: AFRAID region
        done = array.submit(write(offset))
        sim.run_until_triggered(done)
        assert array.dirty_stripe_count == 1
        sim.run(until=sim.now + 1.0)
        assert array.dirty_stripe_count == 0  # scrubbed in idle time

    def test_raid0_region_never_scrubbed(self):
        sim = Simulator()
        array = self.make_array(sim)
        offset = 9 * array.layout.stripe_data_sectors  # stripe 9: RAID0 region
        done = array.submit(write(offset))
        sim.run_until_triggered(done)
        sim.run(until=sim.now + 5.0)
        assert array.dirty_stripe_count == 1  # deliberately unredundant
        assert array.stats.stripes_scrubbed == 0

    def test_mixed_write_takes_strictest_mode(self):
        sim = Simulator()
        array = self.make_array(sim)
        # Spans the last RAID5 stripe (3) and the first AFRAID stripe (4).
        offset = 4 * array.layout.stripe_data_sectors - 4
        done = array.submit(write(offset, 8))
        sim.run_until_triggered(done)
        assert array.dirty_stripe_count == 0  # RAID5 semantics applied


class TestAdaptiveStart:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveStartPolicy(idle_fraction_needed=0.0)
        with pytest.raises(ValueError):
            AdaptiveStartPolicy(observation_s=-1)

    def test_starts_conservative_then_switches(self):
        sim = Simulator()
        policy = AdaptiveStartPolicy(idle_fraction_needed=0.5, observation_s=1.0)
        array = toy_array(sim, policy=policy, with_functional=False, idle_threshold_s=0.05)

        # Early write: still observing -> RAID 5 semantics.
        done = array.submit(write(0))
        sim.run_until_triggered(done)
        assert array.stats.preread_ios > 0
        assert array.dirty_stripe_count == 0

        # A mostly idle workload follows; after the observation window the
        # policy trusts the idle time and defers parity.
        sim.run(until=5.0)
        before = array.stats.preread_ios
        done = array.submit(write(64))
        sim.run_until_triggered(done)
        assert array.stats.preread_ios == before  # AFRAID write now
        assert array.dirty_stripe_count == 1

    def test_busy_workload_stays_raid5(self):
        sim = Simulator()
        policy = AdaptiveStartPolicy(idle_fraction_needed=0.9, observation_s=0.5)
        array = toy_array(sim, policy=policy, with_functional=False, idle_threshold_s=0.05)

        def hammer():
            for i in range(60):
                yield array.submit(write((i * 16) % 512))

        proc = sim.process(hammer())
        sim.run_until_triggered(proc)
        # The array was busy nearly continuously: no switch to AFRAID.
        assert array.dirty_stripe_count == 0


class TestPredictiveScrub:
    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveScrubPolicy(stripe_scrub_estimate_s=0)

    def test_requires_detector(self):
        policy = PredictiveScrubPolicy()
        with pytest.raises(TypeError):
            policy.attach(object())

    def test_holds_off_when_idle_periods_predicted_short(self):
        sim = Simulator()
        policy = PredictiveScrubPolicy(stripe_scrub_estimate_s=0.5, alpha=1.0)
        array = toy_array(sim, policy=policy, with_functional=False, idle_threshold_s=0.01)

        def choppy_client():
            # Train the predictor on ~50 ms idle periods (< 0.5 s estimate).
            for i in range(10):
                done = array.submit(write((i * 16) % 512))
                yield done
                yield sim.timeout(0.05)

        proc = sim.process(choppy_client())
        sim.run_until_triggered(proc)
        sim.run(until=sim.now + 0.2)
        # Idle periods are predicted too short for a rebuild: debt remains.
        assert array.dirty_stripe_count > 0

    def test_scrubs_when_idle_periods_predicted_long(self):
        sim = Simulator()
        policy = PredictiveScrubPolicy(stripe_scrub_estimate_s=0.02, alpha=1.0)
        array = toy_array(sim, policy=policy, with_functional=False, idle_threshold_s=0.01)

        def relaxed_client():
            for i in range(4):
                done = array.submit(write((i * 16) % 512))
                yield done
                yield sim.timeout(1.0)  # long idle periods

        proc = sim.process(relaxed_client())
        sim.run_until_triggered(proc)
        sim.run(until=sim.now + 2.0)
        assert array.dirty_stripe_count == 0
