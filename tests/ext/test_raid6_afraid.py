"""Tests for the AFRAID-on-RAID 6 timing model."""

import pytest

from repro.array.request import ArrayRequest
from repro.disk import IoKind, toy_disk
from repro.ext.raid6_afraid import DeferralMode, Raid6AfraidArray
from repro.sim import Simulator


def make_array(sim, mode, idle_threshold_s=0.05, ndisks=6):
    disks = [toy_disk(sim, name=f"d{i}") for i in range(ndisks)]
    return Raid6AfraidArray(sim, disks, stripe_unit_sectors=8, mode=mode, idle_threshold_s=idle_threshold_s)


def small_write(sim, array, offset=0):
    request = ArrayRequest(IoKind.WRITE, offset, 4)
    done = array.submit(request)
    sim.run_until_triggered(done)
    return request


class TestWriteCosts:
    def test_full_raid6_small_write_is_six_ios(self):
        sim = Simulator()
        array = make_array(sim, DeferralMode.NONE)
        small_write(sim, array)
        # read old data + old P + old Q, write data + P + Q
        assert array.disk_ios == 6

    def test_defer_q_is_four_ios(self):
        sim = Simulator()
        array = make_array(sim, DeferralMode.DEFER_Q, idle_threshold_s=1e9)
        small_write(sim, array)
        assert array.disk_ios == 4

    def test_defer_both_is_one_io(self):
        sim = Simulator()
        array = make_array(sim, DeferralMode.DEFER_BOTH, idle_threshold_s=1e9)
        small_write(sim, array)
        assert array.disk_ios == 1

    def test_latency_ordering_quiet(self):
        """On a quiet array the P/Q I/Os run in parallel on other disks,
        so NONE ~= DEFER_Q in latency; deferring both skips the pre-read
        phase entirely and is strictly faster."""
        times = {}
        for mode in DeferralMode:
            sim = Simulator()
            array = make_array(sim, mode, idle_threshold_s=1e9)
            times[mode] = small_write(sim, array).io_time
        assert times[DeferralMode.DEFER_BOTH] < times[DeferralMode.DEFER_Q]
        assert times[DeferralMode.DEFER_Q] <= times[DeferralMode.NONE] + 1e-9

    def test_latency_ordering_under_load(self):
        """Under a burst the extra syndrome I/Os cost real queueing time."""
        means = {}
        for mode in DeferralMode:
            sim = Simulator()
            array = make_array(sim, mode, idle_threshold_s=1e9)
            from repro.sim import AllOf

            events = [
                array.submit(ArrayRequest(IoKind.WRITE, i * 32, 4)) for i in range(24)
            ]
            sim.run_until_triggered(AllOf(sim, events))
            means[mode] = array.mean_io_time
        assert means[DeferralMode.DEFER_BOTH] < means[DeferralMode.DEFER_Q]
        assert means[DeferralMode.DEFER_Q] < means[DeferralMode.NONE]


class TestRedundancyStates:
    def test_none_mode_never_stale(self):
        sim = Simulator()
        array = make_array(sim, DeferralMode.NONE)
        small_write(sim, array)
        assert array.stale_p.count == 0
        assert array.stale_q.count == 0

    def test_defer_q_partial_redundancy(self):
        sim = Simulator()
        array = make_array(sim, DeferralMode.DEFER_Q, idle_threshold_s=1e9)
        small_write(sim, array)
        assert array.stale_p.count == 0
        assert array.stale_q.count == 1

    def test_defer_both_full_exposure(self):
        sim = Simulator()
        array = make_array(sim, DeferralMode.DEFER_BOTH, idle_threshold_s=1e9)
        small_write(sim, array)
        assert array.stale_p.count == 1
        assert array.stale_q.count == 1

    def test_scrubber_restores_both(self):
        sim = Simulator()
        array = make_array(sim, DeferralMode.DEFER_BOTH, idle_threshold_s=0.05)
        small_write(sim, array)
        sim.run(until=sim.now + 1.0)
        assert array.stale_p.count == 0
        assert array.stale_q.count == 0
        assert array.stripes_scrubbed == 1

    def test_exposure_trackers_distinguish_levels(self):
        sim = Simulator()
        array = make_array(sim, DeferralMode.DEFER_Q, idle_threshold_s=0.05)
        small_write(sim, array)
        sim.run(until=sim.now + 1.0)
        array.finalize()
        # Q-stale time counts as degraded-but-not-exposed:
        assert array.degraded_tracker.unprotected_fraction > 0
        assert array.exposure_tracker.unprotected_fraction == 0.0


class TestReads:
    def test_read_costs_data_ios_only(self):
        sim = Simulator()
        array = make_array(sim, DeferralMode.NONE)
        request = ArrayRequest(IoKind.READ, 0, 4)
        done = array.submit(request)
        sim.run_until_triggered(done)
        assert array.disk_ios == 1

    def test_out_of_range_rejected(self):
        sim = Simulator()
        array = make_array(sim, DeferralMode.NONE)
        with pytest.raises(ValueError):
            array.submit(ArrayRequest(IoKind.READ, array.layout.total_data_sectors, 1))
