"""Tests for degraded-mode operation and spare rebuild."""

import pytest

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind, toy_disk
from repro.ext.rebuild import RebuildManager
from repro.policy import AlwaysRaid5Policy, NeverScrubPolicy
from repro.sim import Simulator


def write(offset, nsectors=4, data=None):
    return ArrayRequest(IoKind.WRITE, offset, nsectors, data=data)


def read(offset, nsectors=4):
    return ArrayRequest(IoKind.READ, offset, nsectors)


def payload(array, nsectors, seed=1):
    return bytes((seed * 59 + i) % 256 for i in range(nsectors * array.sector_bytes))


class TestDegradedMode:
    def test_degraded_read_reconstructs(self):
        sim = Simulator()
        # No read cache: the degraded read must hit the disks.
        array = toy_array(sim, policy=AlwaysRaid5Policy(), read_cache_bytes=0)
        data = payload(array, 4, seed=2)
        done = array.submit(write(0, 4, data=data))
        sim.run_until_triggered(done)

        victim = array.layout.data_disk(0, 0)
        array.disks[victim].fail()
        array.functional.fail_disk(victim)
        array.enter_degraded(victim)

        result = sim.run_until_triggered(array.submit(read(0, 4)))
        assert result.result_data == data
        assert array.stats.reconstruct_reads > 0

    def test_degraded_write_maintains_parity(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        victim = 2
        array.disks[victim].fail()
        array.enter_degraded(victim)
        done = array.submit(write(0, 4))
        sim.run_until_triggered(done)
        # Degraded writes are reconstruct-style: pre-reads + parity write.
        assert array.stats.reconstruct_reads > 0
        assert array.stats.foreground_parity_writes >= 0  # parity disk may be the victim

    def test_double_degradation_records_data_loss(self):
        """A second concurrent failure is a data-loss *outcome*, not a crash.

        Campaign/nemesis runs must keep going after an array dies; the
        controller records a structured event instead of raising.
        """
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        assert array.enter_degraded(0) is None
        event = array.enter_degraded(1)
        assert event is not None
        assert not event.survivable  # RAID 5: second failure is fatal
        assert event.failed_disks == (0, 1)
        assert array.data_loss_events == [event]
        assert array.failed_disks == (0, 1)
        # Re-reporting the same disk is a no-op.
        assert array.enter_degraded(1) is None
        assert len(array.data_loss_events) == 1

    def test_scrubber_pauses_while_degraded(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False, idle_threshold_s=0.05)
        done = array.submit(write(0, 4))
        sim.run_until_triggered(done)
        array.enter_degraded(0)
        sim.run(until=sim.now + 2.0)
        assert array.dirty_stripe_count == 1  # nothing scrubbed while degraded

    def test_commit_rejected_while_degraded(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        array.enter_degraded(0)
        with pytest.raises(RuntimeError):
            array.commit(0, 4)


class TestRebuild:
    def run_rebuild(self, sim, array, victim, yield_to_foreground=True):
        manager = RebuildManager(sim, array, yield_to_foreground=yield_to_foreground)
        spare = toy_disk(sim, name="spare")
        done = manager.fail_and_rebuild(victim, spare)
        result = sim.run_until_triggered(done)
        return manager, result

    def test_rebuild_completes_and_restores_service(self):
        sim = Simulator()
        array = toy_array(sim, ndisks=4, stripe_unit_sectors=4, with_functional=False)
        manager, stats = self.run_rebuild(sim, array, victim=1)
        assert array.degraded_disk is None
        assert stats.stripes_rebuilt == array.layout.nstripes
        assert stats.duration_s > 0
        # The replaced member serves I/O again.
        done = array.submit(read(0, 4))
        sim.run_until_triggered(done)

    def test_clean_data_survives_rebuild(self):
        sim = Simulator()
        array = toy_array(sim, ndisks=4, stripe_unit_sectors=4, policy=AlwaysRaid5Policy())
        data = payload(array, 8, seed=3)
        sim.run_until_triggered(array.submit(write(0, 8, data=data)))
        victim = array.layout.data_disk(0, 0)
        self.run_rebuild(sim, array, victim)
        result = sim.run_until_triggered(array.submit(read(0, 8)))
        assert result.result_data == data
        # The functional twin's parity is whole again everywhere.
        assert all(
            array.functional.parity_consistent(stripe)
            for stripe in range(array.layout.nstripes)
        )

    def test_dirty_data_on_victim_is_lost_but_array_recovers(self):
        sim = Simulator()
        array = toy_array(sim, ndisks=4, stripe_unit_sectors=4, policy=NeverScrubPolicy())
        data = payload(array, 4, seed=4)
        sim.run_until_triggered(array.submit(write(0, 4, data=data)))
        victim = array.layout.data_disk(0, 0)  # holds the dirty unit
        assert array.functional.lost_data_bytes(victim) > 0
        self.run_rebuild(sim, array, victim)
        # The unit came back zero-filled (the AFRAID exposure, realised),
        # but parity is consistent so the array tolerates future failures.
        result = sim.run_until_triggered(array.submit(read(0, 4)))
        assert result.result_data == bytes(len(data))
        assert all(
            array.functional.parity_consistent(stripe)
            for stripe in range(array.layout.nstripes)
        )

    def test_rebuild_yields_to_foreground(self):
        sim = Simulator()
        array = toy_array(sim, ndisks=4, stripe_unit_sectors=4, with_functional=False,
                          idle_threshold_s=0.02)
        manager = RebuildManager(sim, array, yield_to_foreground=True)
        spare = toy_disk(sim, name="spare")
        rebuilt = manager.fail_and_rebuild(0, spare)

        # Client traffic shares the array with the rebuild and completes
        # with reasonable latency (the sweep pauses while clients are active).
        latencies = []

        def client():
            for i in range(10):
                yield sim.timeout(0.05)
                request = read(64 + i * 16, 4)
                yield array.submit(request)
                latencies.append(request.io_time)

        proc = sim.process(client())
        sim.run_until_triggered(proc)
        sim.run_until_triggered(rebuilt)
        assert len(latencies) == 10
        assert max(latencies) < 0.5

    def test_small_spare_rejected(self):
        sim = Simulator()
        array = toy_array(sim, ndisks=4, stripe_unit_sectors=4, with_functional=False)
        manager = RebuildManager(sim, array)
        tiny = toy_disk(sim, name="tiny", cylinders=16)
        with pytest.raises(ValueError):
            manager.fail_and_rebuild(0, tiny)
