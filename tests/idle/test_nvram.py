"""Tests for the NVRAM marking memory."""

import pytest

from repro.nvram import MarkMemory, MarkMemoryFailedError


class TestMarking:
    def test_mark_and_query(self):
        memory = MarkMemory(nstripes=10)
        assert memory.mark(3)
        assert memory.is_marked(3)
        assert not memory.is_marked(4)
        assert memory.count == 1

    def test_remark_is_noop(self):
        """'attempting to re-mark an already-marked stripe does nothing'."""
        memory = MarkMemory(nstripes=10)
        assert memory.mark(3)
        assert not memory.mark(3)
        assert memory.count == 1

    def test_clear(self):
        memory = MarkMemory(nstripes=10)
        memory.mark(3)
        assert memory.clear(3)
        assert not memory.is_marked(3)
        assert not memory.clear(3)  # already clear

    def test_insertion_order_preserved(self):
        memory = MarkMemory(nstripes=10)
        for stripe in (7, 2, 9):
            memory.mark(stripe)
        assert memory.marked_stripes == [7, 2, 9]
        assert memory.oldest() == (7, 0)

    def test_bounds(self):
        memory = MarkMemory(nstripes=10)
        with pytest.raises(ValueError):
            memory.mark(10)
        with pytest.raises(ValueError):
            memory.mark(-1)
        with pytest.raises(ValueError):
            memory.mark(0, sub_unit=1)  # only 1 bit per stripe by default


class TestSubStripeMarks:
    def test_sub_units_tracked_independently(self):
        memory = MarkMemory(nstripes=4, bits_per_stripe=4)
        memory.mark(1, sub_unit=0)
        memory.mark(1, sub_unit=2)
        assert memory.is_marked(1)
        assert memory.is_marked(1, sub_unit=0)
        assert not memory.is_marked(1, sub_unit=1)
        assert memory.marks_of(1) == [0, 2]

    def test_clear_stripe_clears_all_sub_units(self):
        memory = MarkMemory(nstripes=4, bits_per_stripe=4)
        memory.mark(1, sub_unit=0)
        memory.mark(1, sub_unit=3)
        memory.mark(2, sub_unit=1)
        assert memory.clear_stripe(1) == 2
        assert not memory.is_marked(1)
        assert memory.is_marked(2)


class TestSizing:
    def test_paper_cost_figure(self):
        """~3 KB of mark memory per GB stored for a 5-wide, 8 KB-unit array."""
        data_per_stripe = 4 * 8 * 1024  # 4 data units x 8 KB
        stripes_per_gb = 10**9 // data_per_stripe
        memory = MarkMemory(nstripes=stripes_per_gb)
        assert 2000 < memory.size_bits / 8 < 4500  # ≈3.8 KB/GB


class TestFailure:
    def test_failed_memory_raises(self):
        memory = MarkMemory(nstripes=4)
        memory.mark(0)
        memory.fail()
        assert memory.failed
        with pytest.raises(MarkMemoryFailedError):
            memory.mark(1)
        with pytest.raises(MarkMemoryFailedError):
            _ = memory.count

    def test_recovery_clears_marks(self):
        memory = MarkMemory(nstripes=4)
        memory.mark(0)
        memory.fail()
        memory.recover()
        assert memory.count == 0
        assert memory.mark(1)
