"""Tests for the idle detector and idle-period predictor."""

import pytest

from repro.idle import IdleDetector, MovingAverageIdlePredictor
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestIdleDetector:
    def test_fires_after_threshold_from_start(self, sim):
        detector = IdleDetector(sim, threshold_s=0.1)
        fired = []
        detector.on_idle.append(lambda: fired.append(sim.now))
        sim.run(until=1.0)
        assert fired == [pytest.approx(0.1)]

    def test_activity_cancels_pending_declaration(self, sim):
        detector = IdleDetector(sim, threshold_s=0.1)
        fired = []
        detector.on_idle.append(lambda: fired.append(sim.now))

        def client():
            yield sim.timeout(0.05)  # before the 100 ms declaration
            detector.activity_started()
            yield sim.timeout(0.5)
            detector.activity_ended()

        sim.process(client())
        sim.run(until=1.0)
        # Only the post-activity declaration fires, at 0.55 + 0.1.
        assert fired == [pytest.approx(0.65)]

    def test_redeclares_after_each_busy_period(self, sim):
        detector = IdleDetector(sim, threshold_s=0.1)
        fired = []
        detector.on_idle.append(lambda: fired.append(round(sim.now, 6)))

        def client():
            for start in (1.0, 2.0):
                yield sim.timeout(start - sim.now)
                detector.activity_started()
                yield sim.timeout(0.2)
                detector.activity_ended()

        sim.process(client())
        sim.run(until=3.0)
        assert fired == [0.1, pytest.approx(1.3), pytest.approx(2.3)]

    def test_overlapping_activity_counts(self, sim):
        detector = IdleDetector(sim, threshold_s=0.1)
        fired = []
        detector.on_idle.append(lambda: fired.append(sim.now))

        def clients():
            yield sim.timeout(0.01)
            detector.activity_started()
            detector.activity_started()
            yield sim.timeout(0.3)
            detector.activity_ended()  # one still outstanding
            yield sim.timeout(0.3)
            detector.activity_ended()

        sim.process(clients())
        sim.run(until=1.0)
        assert fired == [pytest.approx(0.71)]
        assert detector.is_idle

    def test_unbalanced_end_raises(self, sim):
        detector = IdleDetector(sim, threshold_s=0.1)
        with pytest.raises(RuntimeError):
            detector.activity_ended()

    def test_idle_for(self, sim):
        detector = IdleDetector(sim, threshold_s=0.1)

        def script():
            detector.activity_started()
            yield sim.timeout(0.5)
            detector.activity_ended()
            yield sim.timeout(0.25)

        proc = sim.process(script())
        sim.run_until_triggered(proc)
        assert detector.idle_for == pytest.approx(0.25)

    def test_busy_callbacks_and_observed_periods(self, sim):
        detector = IdleDetector(sim, threshold_s=0.1)
        busy_at = []
        detector.on_busy.append(lambda: busy_at.append(sim.now))

        def client():
            yield sim.timeout(1.0)
            detector.activity_started()
            yield sim.timeout(0.1)
            detector.activity_ended()
            yield sim.timeout(2.0)
            detector.activity_started()
            detector.activity_ended()

        sim.process(client())
        sim.run()
        assert busy_at == [pytest.approx(1.0), pytest.approx(3.1)]
        periods = detector.observed_idle_periods
        assert periods[0] == pytest.approx(1.0)  # initial idle span
        assert periods[1] == pytest.approx(2.0)

    def test_busy_idle_busy_race_rearms_cleanly(self, sim):
        """The generation counter must survive a busy→idle→busy flip that
        happens while an earlier declaration timer is still pending."""
        detector = IdleDetector(sim, threshold_s=0.1)
        fired = []
        detector.on_idle.append(lambda: fired.append(round(sim.now, 6)))

        def client():
            yield sim.timeout(0.05)
            detector.activity_started()  # cancels the initial arm (due 0.10)
            yield sim.timeout(0.01)
            detector.activity_ended()  # re-arms: declaration due 0.16
            yield sim.timeout(0.04)
            detector.activity_started()  # 0.10: cancels the 0.16 declaration
            yield sim.timeout(0.02)
            detector.activity_ended()  # 0.12: re-arms, due 0.22

        sim.process(client())
        sim.run(until=1.0)
        assert fired == [pytest.approx(0.22)]

    def test_stale_timer_does_not_fire_while_busy(self, sim):
        """An armed declaration whose due time lands inside a later busy
        period stays cancelled even after the system goes idle again."""
        detector = IdleDetector(sim, threshold_s=0.1)
        fired = []
        detector.on_idle.append(lambda: fired.append(round(sim.now, 6)))

        def client():
            yield sim.timeout(0.05)
            detector.activity_started()
            yield sim.timeout(0.3)  # the 0.10 timer expires mid-busy
            detector.activity_ended()

        sim.process(client())
        sim.run(until=1.0)
        assert fired == [pytest.approx(0.45)]
        assert detector.observed_idle_periods == [pytest.approx(0.05)]

    def test_instantaneous_busy_period_records_no_idle_span(self, sim):
        detector = IdleDetector(sim, threshold_s=0.1)

        def client():
            yield sim.timeout(0.2)
            detector.activity_started()
            detector.activity_ended()  # same timestamp: zero-length busy
            detector.activity_started()
            detector.activity_ended()

        sim.process(client())
        sim.run(until=1.0)
        # The 0.2 s initial idle span is recorded once; the zero-length
        # idle gaps between the two instantaneous bursts are not.
        assert detector.observed_idle_periods == [pytest.approx(0.2)]

    def test_on_busy_fires_only_on_zero_to_one_transition(self, sim):
        detector = IdleDetector(sim, threshold_s=0.1)
        busy_at = []
        detector.on_busy.append(lambda: busy_at.append(sim.now))

        def client():
            yield sim.timeout(0.01)
            detector.activity_started()
            detector.activity_started()  # already busy: no second callback
            detector.activity_started()
            yield sim.timeout(0.01)
            detector.activity_ended()
            detector.activity_ended()
            detector.activity_ended()

        sim.process(client())
        sim.run(until=1.0)
        assert busy_at == [pytest.approx(0.01)]
        assert detector.is_idle

    def test_unbalanced_end_after_real_activity_raises(self, sim):
        detector = IdleDetector(sim, threshold_s=0.1)
        detector.activity_started()
        detector.activity_ended()
        with pytest.raises(RuntimeError):
            detector.activity_ended()


class TestPredictor:
    def test_converges_to_constant_periods(self, sim):
        detector = IdleDetector(sim, threshold_s=0.01)
        predictor = MovingAverageIdlePredictor(detector, alpha=0.5, initial_s=0.0)

        def client():
            for _ in range(8):
                yield sim.timeout(2.0)  # 2 s idle periods
                detector.activity_started()
                yield sim.timeout(0.1)
                detector.activity_ended()

        sim.process(client())
        sim.run()
        assert predictor.predict() == pytest.approx(2.0, rel=0.05)

    def test_alpha_validation(self, sim):
        detector = IdleDetector(sim)
        with pytest.raises(ValueError):
            MovingAverageIdlePredictor(detector, alpha=0.0)
