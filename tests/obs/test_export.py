"""Tests for the Prometheus text exporter and JSONL snapshot trajectory."""

import math

import pytest

from repro.obs import (
    MetricsRegistry,
    RegistrySnapshotter,
    parse_prometheus_text,
    prometheus_text,
    read_jsonl_snapshots,
    write_prometheus,
)


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("forced_scrubs_total", "scrubs forced despite load").inc(3)
    registry.gauge("parity_lag_bytes", "unredundant bytes").set(65536.5)
    registry.gauge("windowed_mttdl_h").set(math.inf)
    hist = registry.histogram("stripe_dirty_dwell_seconds", "dwell distribution")
    for value in (0.001, 0.010, 0.010, 0.250, 3.0):
        hist.observe(value)
    return registry


class TestPrometheusRoundTrip:
    def test_scalar_samples_round_trip(self):
        registry = _sample_registry()
        parsed = parse_prometheus_text(prometheus_text(registry))
        assert parsed["types"]["forced_scrubs_total"] == "counter"
        assert parsed["types"]["parity_lag_bytes"] == "gauge"
        assert parsed["samples"]["forced_scrubs_total"] == 3
        assert parsed["samples"]["parity_lag_bytes"] == 65536.5  # repr() exact
        assert parsed["samples"]["windowed_mttdl_h"] == math.inf
        assert parsed["help"]["parity_lag_bytes"] == "unredundant bytes"

    def test_histogram_round_trips(self):
        registry = _sample_registry()
        parsed = parse_prometheus_text(prometheus_text(registry))
        hist = parsed["histograms"]["stripe_dirty_dwell_seconds"]
        assert hist["count"] == 5
        assert hist["sum"] == pytest.approx(3.271)
        assert hist["buckets"]["+Inf"] == 5
        # Bucket series is cumulative and monotone non-decreasing.
        finite = [
            count for le, count in sorted(
                hist["buckets"].items(),
                key=lambda kv: math.inf if kv[0] == "+Inf" else float(kv[0]),
            )
        ]
        assert finite == sorted(finite)
        assert finite[-1] == 5

    def test_empty_histogram_still_exports(self):
        registry = MetricsRegistry()
        registry.histogram("empty_seconds")
        parsed = parse_prometheus_text(prometheus_text(registry))
        hist = parsed["histograms"]["empty_seconds"]
        assert hist["count"] == 0
        assert hist["buckets"] == {"+Inf": 0}

    def test_write_prometheus_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_prometheus(_sample_registry(), path)
        parsed = parse_prometheus_text(path.read_text())
        assert parsed["samples"]["forced_scrubs_total"] == 3

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is not { a sample\n")


class TestRegistrySnapshotter:
    def test_series_extraction(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        snaps = RegistrySnapshotter(registry)
        for t, value in ((0.0, 1), (0.1, 2), (0.2, 3)):
            gauge.set(value)
            snaps.snap(t)
        times, values = snaps.series("depth")
        assert times == [0.0, 0.1, 0.2]
        assert values == [1.0, 2.0, 3.0]

    def test_jsonl_round_trip_with_infinity(self, tmp_path):
        registry = MetricsRegistry()
        registry.gauge("mttdl_h").set(math.inf)
        registry.counter("events_total").inc()
        snaps = RegistrySnapshotter(registry)
        snaps.snap(0.5)
        path = tmp_path / "snaps.jsonl"
        snaps.write_jsonl(path)
        revived = read_jsonl_snapshots(path)
        assert revived == [{"time_s": 0.5, "mttdl_h": math.inf, "events_total": 1.0}]

    def test_memory_bound(self):
        registry = MetricsRegistry()
        snaps = RegistrySnapshotter(registry, max_snaps=2)
        for t in (0.0, 0.1, 0.2, 0.3):
            snaps.snap(t)
        assert len(snaps.snaps) == 2
        assert snaps.dropped == 2


class TestLabelEscaping:
    """Exposition-format label values: backslash, quote, newline escapes."""

    @pytest.mark.parametrize(
        "raw",
        [
            "plain",
            'with "quotes"',
            "back\\slash",
            "multi\nline",
            '\\"\n mixed \\n literal',
            "",
        ],
    )
    def test_escape_round_trips(self, raw):
        from repro.obs.export import escape_label_value, unescape_label_value

        escaped = escape_label_value(raw)
        assert "\n" not in escaped
        assert unescape_label_value(escaped) == raw

    def test_labelled_samples_parse_with_special_chars(self):
        from repro.obs.export import escape_label_value, format_labels

        nasty = 'rule "a\\b"\nline2'
        text = (
            "# TYPE breaches_total counter\n"
            f'breaches_total{{rule="{escape_label_value(nasty)}",kind="slo"}} 2\n'
            "breaches_total 7\n"
        )
        parsed = parse_prometheus_text(text)
        labelled = parsed["labelled"]["breaches_total"]
        assert ({"rule": nasty, "kind": "slo"}, 2.0) in labelled
        # The bare sample still lands in the scalar view.
        assert parsed["samples"]["breaches_total"] == 7.0
        # format_labels emits what the parser reads back.
        assert format_labels({"rule": nasty}) == (
            f'{{rule="{escape_label_value(nasty)}"}}'
        )

    def test_unterminated_label_value_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus_text('m{rule="never closed} 1\n')
