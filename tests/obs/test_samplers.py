"""Tests for periodic time-series sampling."""

import pytest

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind
from repro.obs import PeriodicSampler, Tracer, attach_array_probes
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestSampler:
    def test_samples_every_period_until_horizon(self, sim):
        sampler = PeriodicSampler(sim, period_s=0.010)
        sampler.add_probe("clock", lambda: sim.now)
        sampler.start(until=0.1)
        sim.run()
        series = sampler.series["clock"]
        assert len(series) == 11  # t = 0.00 .. 0.10 inclusive
        assert series.times_s[0] == 0.0
        assert series.times_s[-1] == pytest.approx(0.10)

    def test_stop_ends_sampling(self, sim):
        sampler = PeriodicSampler(sim, period_s=0.010)
        sampler.add_probe("one", lambda: 1.0)
        sampler.start()

        def stopper():
            yield sim.timeout(0.035)
            sampler.stop()

        sim.process(stopper())
        sim.run()
        assert len(sampler.series["one"]) == 4

    def test_failing_probe_is_dropped_not_fatal(self, sim):
        sampler = PeriodicSampler(sim, period_s=0.010)

        def bad():
            raise RuntimeError("hardware gone")

        sampler.add_probe("bad", bad)
        sampler.add_probe("good", lambda: 1.0)
        sampler.start(until=0.05)
        sim.run()
        assert len(sampler.series["good"]) == 6
        assert len(sampler.series["bad"]) == 0
        assert sampler.dropped == 6

    def test_mirrors_into_tracer_counters(self, sim):
        tracer = Tracer(sim)
        sampler = PeriodicSampler(sim, period_s=0.010, tracer=tracer)
        sampler.add_probe("depth", lambda: 2.0)
        sampler.start(until=0.02)
        sim.run()
        times = [t for t, _ in tracer.counter_series("depth")]
        values = [v for _, v in tracer.counter_series("depth")]
        assert times == [pytest.approx(t) for t in (0.0, 0.01, 0.02)]
        assert values == [2.0, 2.0, 2.0]

    def test_series_memory_bound(self, sim):
        sampler = PeriodicSampler(sim, period_s=0.010, max_samples_per_series=3)
        sampler.add_probe("one", lambda: 1.0)
        sampler.start(until=0.1)
        sim.run()
        assert len(sampler.series["one"]) == 3
        assert sampler.dropped == 8

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            PeriodicSampler(sim, period_s=0.0)
        sampler = PeriodicSampler(sim)
        sampler.add_probe("x", lambda: 0.0)
        with pytest.raises(ValueError):
            sampler.add_probe("x", lambda: 1.0)
        sampler.start(until=0.01)
        with pytest.raises(RuntimeError):
            sampler.start()

    def test_to_dict_shape(self, sim):
        sampler = PeriodicSampler(sim, period_s=0.010)
        sampler.add_probe("one", lambda: 1.0)
        sampler.start(until=0.01)
        sim.run()
        payload = sampler.to_dict()
        assert payload["period_s"] == 0.010
        assert payload["series"]["one"]["values"] == [1.0, 1.0]


class TestArrayProbes:
    def test_standard_probes_observe_real_activity(self, sim):
        array = toy_array(sim, with_functional=False)
        sampler = PeriodicSampler(sim, period_s=0.005)
        attach_array_probes(sampler, array)
        sampler.start(until=0.5)

        def client():
            for i in range(5):
                yield array.submit(ArrayRequest(IoKind.WRITE, i * 16, 4))

        sim.process(client())
        sim.run()

        assert sampler.series["outstanding_requests"].peak >= 1.0
        assert sampler.series["dirty_stripes"].peak >= 1.0
        assert sampler.series["parity_lag_bytes"].peak > 0.0
        utilisations = [
            sampler.series[f"disk{i}_utilisation"] for i in range(array.ndisks)
        ]
        assert any(series.peak > 0.0 for series in utilisations)
        assert all(series.peak <= 1.0 for series in utilisations)

    def test_probe_count_matches_array_width(self, sim):
        array = toy_array(sim, ndisks=3, with_functional=False)
        sampler = PeriodicSampler(sim)
        attach_array_probes(sampler, array)
        assert len(sampler.probes) == 4 + 3
