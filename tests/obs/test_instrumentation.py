"""End-to-end instrumentation: spans/histograms from real simulated runs."""

import pytest

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind, toy_disk
from repro.ext.rebuild import RebuildManager
from repro.faults import FaultInjector
from repro.harness import run_experiment
from repro.obs import HistogramSet, Tracer
from repro.policy import BaselineAfraidPolicy, NeverScrubPolicy
from repro.sim import Simulator


def write(offset, nsectors=4):
    return ArrayRequest(IoKind.WRITE, offset, nsectors)


def read(offset, nsectors=4):
    return ArrayRequest(IoKind.READ, offset, nsectors)


class TestExperimentInstrumentation:
    def test_tracer_captures_every_layer(self):
        tracer = Tracer()
        result = run_experiment("hplajw", BaselineAfraidPolicy(), duration_s=8.0, tracer=tracer)
        client_spans = tracer.spans_on("client")
        assert len(client_spans) == result.reads + result.writes
        assert tracer.spans_on("scrubber")  # idle-time parity rebuilds
        assert tracer.counter_series("dirty_stripes")
        assert tracer.counter_series("parity_lag_bytes")
        # Per-disk command spans land on the back-end driver tracks.
        backend = [r for r in tracer.records if r[0] == "X" and ".be" in r[4]]
        assert backend

    def test_histograms_partition_client_requests(self):
        result = run_experiment("hplajw", BaselineAfraidPolicy(), duration_s=8.0)
        hists = result.histogram_set()
        assert hists.get("client_read").count == result.reads
        assert hists.get("client_write").count == result.writes
        assert hists.get("scrub").count == result.stripes_scrubbed
        assert hists.get("degraded_read").count == 0  # fault-free run

    def test_external_histogram_set_receives_records(self):
        mine = HistogramSet()
        result = run_experiment(
            "hplajw", BaselineAfraidPolicy(), duration_s=4.0, histograms=mine
        )
        assert mine.total_count > 0
        assert mine == result.histogram_set()

    def test_disabled_run_records_nothing_extra(self):
        """Without a tracer the run produces identical results (the
        histograms are the only always-on addition)."""
        plain = run_experiment("hplajw", BaselineAfraidPolicy(), duration_s=4.0)
        traced = run_experiment(
            "hplajw", BaselineAfraidPolicy(), duration_s=4.0, tracer=Tracer()
        )
        assert plain.io_time == traced.io_time
        assert plain.histogram_set() == traced.histogram_set()


class TestDegradedAndRebuild:
    def test_degraded_reads_classified_separately(self):
        sim = Simulator()
        array = toy_array(sim, policy=NeverScrubPolicy(), read_cache_bytes=0)
        hists = HistogramSet()
        array.attach_observability(histograms=hists)
        # The stripe must be clean: a dirty stripe on a failed disk is data
        # loss, not a degraded read.
        victim = array.layout.data_disk(0, 0)
        array.disks[victim].fail()
        array.functional.fail_disk(victim)
        array.enter_degraded(victim)
        sim.run_until_triggered(array.submit(read(0, 4)))
        assert hists.get("degraded_read").count == 1
        assert hists.get("client_read").count == 0

    def test_rebuild_spans_and_latencies(self):
        sim = Simulator()
        array = toy_array(sim, ndisks=4, stripe_unit_sectors=4, with_functional=False)
        tracer = Tracer(sim)
        hists = HistogramSet()
        array.attach_observability(tracer=tracer, histograms=hists)
        manager = RebuildManager(sim, array, yield_to_foreground=False)
        done = manager.fail_and_rebuild(1, toy_disk(sim, name="spare"))
        stats = sim.run_until_triggered(done)

        assert tracer.instants_named("disk_failed")
        stripe_spans = [r for r in tracer.spans_on("rebuild") if r[3] == "rebuild_stripe"]
        assert len(stripe_spans) == stats.stripes_rebuilt
        (sweep,) = [r for r in tracer.spans_on("rebuild") if r[3] == "rebuild"]
        assert sweep[2] == pytest.approx(stats.duration_s)
        assert hists.get("rebuild").count == stats.stripes_rebuilt


class TestFaultInstants:
    def test_disk_failure_instant_carries_exposure(self):
        sim = Simulator()
        array = toy_array(sim, policy=NeverScrubPolicy())
        tracer = Tracer(sim)
        array.attach_observability(tracer=tracer)
        injector = FaultInjector(sim, array)
        sim.run_until_triggered(array.submit(write(0, 4)))
        injector.fail_disk_at(disk=0, at_time=sim.now + 0.5)
        sim.run(until=sim.now + 1.0)
        (instant,) = tracer.instants_named("disk_failure")
        assert instant[5]["disk"] == 0
        assert instant[5]["dirty"] == 1

    def test_nvram_failure_and_recovery_instants(self):
        sim = Simulator()
        array = toy_array(sim, ndisks=3, stripe_unit_sectors=4, with_functional=False)
        tracer = Tracer(sim)
        array.attach_observability(tracer=tracer)
        injector = FaultInjector(sim, array)
        injector.fail_mark_memory_at(at_time=1.0)
        sim.run(until=2.0)
        assert tracer.instants_named("nvram_failure")
        (recovery,) = tracer.instants_named("nvram_recovery")
        assert recovery[5]["stripes"] == array.layout.nstripes


class TestPolicyInstants:
    def test_threshold_policy_emits_force_scrub_on_transition(self):
        from repro.policy import DirtyStripeThresholdPolicy

        sim = Simulator()
        array = toy_array(
            sim,
            policy=DirtyStripeThresholdPolicy(max_dirty_stripes=2),
            with_functional=False,
            idle_threshold_s=10.0,  # never idle-scrub during the test
        )
        tracer = Tracer(sim)
        array.attach_observability(tracer=tracer)
        stride = array.layout.stripe_data_sectors
        for stripe in range(4):
            sim.run_until_triggered(array.submit(write(stripe * stride, 4)))
        instants = tracer.instants_named("policy.force_scrub")
        assert instants  # fired when the threshold was first crossed
        assert instants[0][5]["threshold"] == 2
