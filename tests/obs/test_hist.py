"""Tests for the mergeable latency histograms."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import REQUEST_CLASSES, HistogramSet, LatencyHistogram

#: Latencies spanning the full simulated range: sub-µs to minutes.
latencies = st.floats(min_value=1e-8, max_value=100.0, allow_nan=False, allow_infinity=False)


class TestRecording:
    def test_count_sum_min_max(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.010, 0.002):
            hist.record(value)
        assert hist.count == 3
        assert hist.sum_s == pytest.approx(0.013)
        assert hist.min_s == 0.001
        assert hist.max_s == 0.010
        assert hist.mean_s == pytest.approx(0.013 / 3)

    def test_below_minimum_clamps_into_bucket_zero(self):
        hist = LatencyHistogram(min_latency_s=1e-6)
        hist.record(1e-9)
        assert hist.counts == {0: 1}
        assert hist.min_s == 1e-9  # exact extremes survive the clamp

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_latency_s=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_per_decade=0)

    def test_bucket_bounds_tile_the_axis(self):
        hist = LatencyHistogram()
        for bucket in range(0, 50):
            low, high = hist.bucket_bounds(bucket)
            assert low < high
            next_low, _ = hist.bucket_bounds(bucket + 1)
            assert next_low == pytest.approx(high)


class TestPercentiles:
    def test_empty_answers_zero(self):
        assert LatencyHistogram().percentile(95) == 0.0

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(101)

    def test_extremes_are_exact(self):
        hist = LatencyHistogram()
        for value in (0.0013, 0.0200, 0.0007, 0.0500):
            hist.record(value)
        assert hist.percentile(0) == 0.0007
        assert hist.percentile(100) == 0.0500

    @given(st.lists(latencies, min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_within_bucket_resolution_of_truth(self, values):
        hist = LatencyHistogram()
        for value in values:
            hist.record(value)
        # One bucket spans a ratio of 10^(1/24); the geometric-midpoint
        # answer is within half a bucket of some observed value's bucket.
        ratio = 10 ** (1 / 24)
        answer = hist.percentile(50)
        ordered = sorted(values)
        true = ordered[max(0, math.ceil(len(ordered) * 0.5) - 1)]
        low = min(true / ratio, hist.min_s)
        high = max(true * ratio, 0.0)
        assert low <= answer <= max(high, hist.max_s)


class TestMerge:
    @given(st.lists(latencies, min_size=0, max_size=200), st.data())
    @settings(max_examples=100, deadline=None)
    def test_merge_is_exact(self, values, data):
        """The load-bearing property: merging per-worker histograms gives
        the same bucket counts — hence identical percentile answers — as
        recording the combined stream into one histogram."""
        cut = data.draw(st.integers(min_value=0, max_value=len(values)))
        left, right = LatencyHistogram(), LatencyHistogram()
        combined = LatencyHistogram()
        for value in values[:cut]:
            left.record(value)
        for value in values[cut:]:
            right.record(value)
        for value in values:
            combined.record(value)
        left.merge(right)
        assert left == combined
        for q in (0, 25, 50, 90, 95, 99, 100):
            assert left.percentile(q) == combined.percentile(q)

    def test_merge_empty_is_identity(self):
        hist = LatencyHistogram()
        hist.record(0.004)
        before = hist.to_dict()
        hist.merge(LatencyHistogram())
        assert hist.to_dict() == before

    def test_layout_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_per_decade=24).merge(
                LatencyHistogram(buckets_per_decade=12)
            )

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(LatencyHistogram())


class TestSerialisation:
    def test_round_trip(self):
        hist = LatencyHistogram()
        for value in (0.0013, 0.0200, 0.0007):
            hist.record(value)
        revived = LatencyHistogram.from_dict(hist.to_dict())
        assert revived == hist
        assert revived.sum_s == hist.sum_s

    def test_payload_is_strict_json(self):
        empty = LatencyHistogram()
        text = json.dumps(empty.to_dict(), allow_nan=False)  # no inf/nan
        assert json.loads(text)["min_s"] is None

    def test_json_round_trip_preserves_equality(self):
        hist = LatencyHistogram()
        hist.record(0.0042)
        revived = LatencyHistogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert revived == hist


class TestHistogramSet:
    def test_standard_classes_present(self):
        hists = HistogramSet()
        for name in REQUEST_CLASSES:
            assert hists.get(name).count == 0

    def test_unknown_class_created_on_demand(self):
        hists = HistogramSet()
        hists.record("my_extension", 0.001)
        assert hists.get("my_extension").count == 1
        assert hists.total_count == 1

    def test_merge_and_equality_ignore_empty_classes(self):
        a, b = HistogramSet(), HistogramSet()
        a.record("client_read", 0.002)
        b.record("client_read", 0.002)
        b.record("scrub", 0.0)  # b has an extra class... with a record
        assert a != b
        b2 = HistogramSet()
        b2.record("client_read", 0.002)
        assert a == b2  # empty classes don't matter

    def test_payload_round_trip(self):
        hists = HistogramSet()
        hists.record("client_write", 0.003)
        hists.record("scrub", 0.030)
        payload = json.loads(json.dumps(hists.to_payload()))
        assert "client_read" not in payload["classes"]  # empty ones omitted
        assert HistogramSet.from_payload(payload) == hists

    def test_rows_and_header_align(self):
        hists = HistogramSet()
        hists.record("client_read", 0.005)
        header = HistogramSet.table_header()
        rows = hists.rows()
        assert len(rows) == 1
        assert len(rows[0]) == len(header)
