"""Analytic-vs-simulated MTTDL convergence for the new organizations.

The acceptance criterion for the organization abstraction: the windowed
achieved MTTDL the exposure monitor reports must land within 10% of the
analytic organization model evaluated at the *measured* unprotected
fraction.  Before the organization dispatch existed the monitor always
used the RAID 5 formulas, which are off by orders of magnitude for a
mirrored array — this test pins the plumbing, not just the math.
"""

import pytest

from repro.array.factory import build_array
from repro.availability import TABLE_1, organization_mttdl
from repro.harness.replay import replay_trace
from repro.obs import ExposureMonitor, HistogramSet, MetricsRegistry
from repro.policy import BaselineAfraidPolicy
from repro.sim import Simulator
from repro.traces import make_trace


def _simulate(organization: str, ndisks: int, duration_s: float = 10.0, seed: int = 11):
    sim = Simulator()
    array = build_array(
        sim, BaselineAfraidPolicy(), ndisks=ndisks, organization=organization
    )
    monitor = ExposureMonitor(window_s=2 * duration_s, params=TABLE_1)
    registry = MetricsRegistry()
    array.attach_observability(
        histograms=HistogramSet(), registry=registry, exposure=monitor
    )
    trace = make_trace(
        "ATT",
        duration_s=duration_s,
        address_space_sectors=array.layout.total_data_sectors,
        seed=seed,
    )
    outcome = replay_trace(sim, array, trace)
    assert not outcome.failures
    return sim, array, monitor


@pytest.mark.parametrize(
    "organization,ndisks",
    [("raid1", 2), ("raid10", 6), ("raid15", 6), ("raid5d", 6)],
)
class TestMttdlConvergence:
    def test_achieved_mttdl_matches_analytic(self, organization, ndisks):
        sim, array, monitor = _simulate(organization, ndisks)
        now = sim.now
        fraction = array.lag_tracker.snapshot_unprotected_fraction(now)
        assert 0.0 < fraction <= 1.0  # the deferral actually ran exposed
        analytic = organization_mttdl(
            organization,
            ndisks,
            TABLE_1.mttf_disk_h,
            TABLE_1.mttr_h,
            fraction,
        )
        assert monitor.achieved_mttdl_h(now) == pytest.approx(analytic, rel=0.10)

    def test_windowed_mttdl_matches_analytic(self, organization, ndisks):
        sim, array, monitor = _simulate(organization, ndisks)
        now = sim.now
        fraction = monitor.windowed_unprotected_fraction(now)
        assert fraction > 0.0
        analytic = organization_mttdl(
            organization,
            ndisks,
            TABLE_1.mttf_disk_h,
            TABLE_1.mttr_h,
            fraction,
        )
        assert monitor.windowed_mttdl_h(now) == pytest.approx(analytic, rel=0.10)

    def test_organization_models_diverge_from_raid5(self, organization, ndisks):
        """The dispatch matters: the RAID 5 formula is not within 10%."""
        if organization == "raid5d":
            # Declustering only shrinks the rebuild window; at the high
            # unprotected fractions the deferral produces here the
            # exposure term dominates and the models converge.
            pytest.skip("raid5d intentionally matches raid5 when exposed")
        sim, array, monitor = _simulate(organization, ndisks)
        now = sim.now
        fraction = array.lag_tracker.snapshot_unprotected_fraction(now)
        raid5 = organization_mttdl(
            "raid5", ndisks, TABLE_1.mttf_disk_h, TABLE_1.mttr_h, fraction
        )
        achieved = monitor.achieved_mttdl_h(now)
        assert achieved != pytest.approx(raid5, rel=0.10)
