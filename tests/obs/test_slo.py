"""Tests for declarative SLO rules and the breach-tracking engine."""

import pytest

from repro.obs import MetricsRegistry, SloEngine, SloRule


class TestSloRuleParse:
    @pytest.mark.parametrize(
        "text,metric,op,threshold",
        [
            ("parity_lag_bytes < 5e6", "parity_lag_bytes", "<", 5e6),
            ("achieved_mttdl_h > 200000", "achieved_mttdl_h", ">", 200000.0),
            ("dirty_stripes <= 20", "dirty_stripes", "<=", 20.0),
            ("windowed_unprotected_fraction>=0.1", "windowed_unprotected_fraction", ">=", 0.1),
        ],
    )
    def test_valid_rules(self, text, metric, op, threshold):
        rule = SloRule.parse(text)
        assert rule.metric == metric
        assert rule.op == op
        assert rule.threshold == threshold

    @pytest.mark.parametrize(
        "text", ["", "no operator here", "x == 5", "x < banana", "< 5", "x <"]
    )
    def test_invalid_rules(self, text):
        with pytest.raises(ValueError):
            SloRule.parse(text)

    def test_ok_semantics(self):
        rule = SloRule.parse("lag < 10")
        assert rule.ok(9.9)
        assert not rule.ok(10.0)
        assert SloRule.parse("mttdl >= 5").ok(5.0)

    def test_describe_round_trips(self):
        rule = SloRule.parse("parity_lag_bytes <= 5e6")
        assert SloRule.parse(rule.describe()) == rule


class _FakeTracer:
    def __init__(self):
        self.instants = []

    def instant(self, name, **kwargs):
        self.instants.append((name, kwargs))


class TestSloEngine:
    def test_breach_and_recovery_accounting(self):
        registry = MetricsRegistry()
        lag = registry.gauge("lag")
        rule = SloRule.parse("lag < 100")
        engine = SloEngine([rule])

        lag.set(50)
        assert engine.evaluate(0.0, registry) == []
        lag.set(150)
        events = engine.evaluate(1.0, registry)
        assert [e.kind for e in events] == ["breach"]
        assert engine.is_breached(rule)
        lag.set(80)
        events = engine.evaluate(3.0, registry)
        assert [e.kind for e in events] == ["recovery"]
        assert not engine.is_breached(rule)
        assert engine.breach_count(rule) == 1
        assert engine.breach_time_s(rule) == pytest.approx(2.0)
        assert engine.any_breached_ever

    def test_unpublished_metric_is_skipped(self):
        engine = SloEngine([SloRule.parse("nothing_yet < 1")])
        assert engine.evaluate(0.0, MetricsRegistry()) == []
        assert not engine.any_breached_ever

    def test_finish_closes_open_episode(self):
        registry = MetricsRegistry()
        registry.gauge("lag").set(200)
        rule = SloRule.parse("lag < 100")
        engine = SloEngine([rule])
        engine.evaluate(1.0, registry)
        engine.finish(5.0)
        assert engine.breach_time_s(rule) == pytest.approx(4.0)
        with pytest.raises(RuntimeError):
            engine.evaluate(6.0, registry)
        with pytest.raises(RuntimeError):
            engine.finish(6.0)

    def test_open_episode_counts_with_now(self):
        registry = MetricsRegistry()
        registry.gauge("lag").set(200)
        rule = SloRule.parse("lag < 100")
        engine = SloEngine([rule])
        engine.evaluate(1.0, registry)
        assert engine.breach_time_s(rule, now=3.0) == pytest.approx(2.0)

    def test_tracer_instants_emitted(self):
        registry = MetricsRegistry()
        lag = registry.gauge("lag")
        tracer = _FakeTracer()
        engine = SloEngine([SloRule.parse("lag < 100")], tracer=tracer)
        lag.set(150)
        engine.evaluate(1.0, registry)
        lag.set(50)
        engine.evaluate(2.0, registry)
        names = [name for name, _ in tracer.instants]
        assert names == ["slo.breach", "slo.recovery"]
        assert all(kwargs["track"] == "slo" for _, kwargs in tracer.instants)

    def test_summary_rows_statuses(self):
        registry = MetricsRegistry()
        registry.gauge("a").set(1)
        registry.gauge("b").set(1)
        registry.gauge("c").set(1)
        rules = [SloRule.parse("a < 10"), SloRule.parse("b < 0.5"), SloRule.parse("c < 0.5")]
        engine = SloEngine(rules)
        engine.evaluate(0.0, registry)  # b and c breach
        registry.gauge("c").set(0.1)
        engine.evaluate(1.0, registry)  # c recovers
        rows = engine.summary_rows()
        assert len(rows) == 3
        assert all(len(row) == len(SloEngine.table_header()) for row in rows)
        statuses = {row[0].split()[0]: row[1] for row in rows}
        assert statuses["a"] == "met"
        assert statuses["b"] == "BREACHED"
        assert statuses["c"] == "recovered"


class TestFinishReturnsClosings:
    """finish() must *return* the horizon-closing recoveries so callers
    (the nemesis timeline) can ingest them; regression for the earlier
    behaviour of only mutating internal accounting."""

    def test_finish_returns_recovery_events(self):
        registry = MetricsRegistry()
        registry.gauge("lag").set(200)
        rule = SloRule.parse("lag < 100")
        engine = SloEngine([rule])
        engine.evaluate(1.0, registry)
        closings = engine.finish(5.0)
        assert [event.kind for event in closings] == ["recovery"]
        assert closings[0].time_s == 5.0
        assert closings[0].rule is rule
        assert closings[0].value == 200
        # The event stream now balances: one breach, one recovery.
        assert [event.kind for event in engine.events] == ["breach", "recovery"]

    def test_finish_with_nothing_open_returns_empty(self):
        engine = SloEngine([SloRule.parse("lag < 100")])
        assert engine.finish(1.0) == []

    def test_censored_episode_still_reports_breached(self):
        registry = MetricsRegistry()
        registry.gauge("lag").set(200)
        rule = SloRule.parse("lag < 100")
        engine = SloEngine([rule])
        engine.evaluate(1.0, registry)
        engine.finish(5.0)
        # The rule shows BREACHED (censored, not recovered) ...
        assert engine.is_breached(rule)
        # ... but the live gate question is answered "no open episode".
        assert not engine.any_breached
