"""Tests for the central metrics registry."""

import pytest

from repro.obs import Counter, Gauge, HistogramMetric, MetricsRegistry
from repro.obs.hist import LatencyHistogram


class TestCounter:
    def test_monotonic(self):
        counter = Counter("total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value == 4.0


class TestHistogramMetric:
    def test_observe_and_scalar_value(self):
        metric = HistogramMetric("latency")
        metric.observe(0.010)
        metric.observe(0.020)
        assert metric.value == 2.0
        assert metric.hist.count == 2

    def test_shared_backing_histogram(self):
        """Sharing a histogram exports it without double recording."""
        shared = LatencyHistogram()
        shared.record(0.5)
        metric = HistogramMetric("dwell", hist=shared)
        assert metric.hist is shared
        assert metric.value == 1.0
        shared.record(0.6)
        assert metric.value == 2.0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("x", "first")
        b = registry.counter("x", "ignored on re-get")
        assert a is b
        assert a.help == "first"

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_contains_len_names_order(self):
        registry = MetricsRegistry()
        registry.gauge("b")
        registry.counter("a")
        assert "b" in registry and "a" in registry and "c" not in registry
        assert len(registry) == 2
        assert registry.names() == ["b", "a"]  # registration order, not sorted
        assert [m.name for m in registry.metrics()] == ["b", "a"]

    def test_value_with_default(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(7)
        assert registry.value("depth") == 7.0
        assert registry.value("missing") is None
        assert registry.value("missing", 0.0) == 0.0

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            MetricsRegistry().get("nope")

    def test_snapshot_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.counter("events_total").inc(3)
        hist = registry.histogram("dwell_seconds")
        hist.observe(1.0)
        hist.observe(2.0)
        snap = registry.snapshot()
        assert snap["events_total"] == 3.0
        assert snap["dwell_seconds_count"] == 2.0
        assert snap["dwell_seconds_sum"] == pytest.approx(3.0)
        assert "dwell_seconds" not in snap
