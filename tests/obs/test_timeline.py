"""Tests for the unified correlation timeline (repro.obs.timeline)."""

import json
import math

import pytest

from repro.obs import HistogramSet, LatencyWindows, SloEngine, SloRule, Timeline
from repro.obs.export import parse_prometheus_text


def _fault_breach_recover_clear(timeline):
    """A canonical episode: inject -> breach -> recovery -> clear."""
    inject = timeline.fault_injected(1.0, "disk_failure", disk=2)
    engine = SloEngine([SloRule.parse("degraded_disks < 1")])
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    registry.gauge("degraded_disks", "test").set(1)
    timeline.ingest_slo_events(engine.evaluate(1.5, registry))
    registry.gauge("degraded_disks", "test").set(0)
    timeline.ingest_slo_events(engine.evaluate(2.5, registry))
    timeline.fault_cleared(3.0, inject, resolution="rebuilt")
    return inject


class TestRecording:
    def test_ids_are_stable_and_sequential(self):
        timeline = Timeline()
        first = timeline.record("a.b", 0.0)
        second = timeline.record("c.d", 1.0)
        assert (first.id, second.id) == ("evt-000000", "evt-000001")
        assert timeline.by_id("evt-000001") is second
        assert timeline.by_id("evt-bogus") is None
        assert len(timeline) == 2

    def test_cause_accepts_event_or_id(self):
        timeline = Timeline()
        root = timeline.record("root", 0.0)
        by_event = timeline.record("child", 1.0, cause=root)
        by_id = timeline.record("child", 2.0, cause=root.id)
        assert by_event.cause == by_id.cause == root.id

    def test_max_events_drops_and_counts(self):
        timeline = Timeline(max_events=2)
        timeline.record("a", 0.0)
        timeline.record("b", 1.0)
        overflow = timeline.record("c", 2.0)
        assert overflow.seq == -1
        assert len(timeline) == 2
        assert timeline.dropped == 1
        assert "1 dropped" in timeline.render_report()

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            Timeline(max_events=0)


class TestCorrelation:
    def test_fault_clear_links_to_inject(self):
        timeline = Timeline()
        inject = timeline.fault_injected(1.0, "nvram_loss")
        assert timeline.open_fault_events() == [inject]
        clear = timeline.fault_cleared(2.0, inject, resolution="drained")
        assert clear.cause == inject.id
        assert clear.attrs["fault"] == "nvram_loss"
        assert timeline.open_fault_events() == []

    def test_breach_cause_is_innermost_open_fault(self):
        timeline = Timeline()
        inject = _fault_breach_recover_clear(timeline)
        (breach,) = timeline.events_of("slo.breach")
        (recovery,) = timeline.events_of("slo.recovery")
        assert breach.cause == inject.id
        assert recovery.cause == breach.id
        chain = timeline.cause_chain(recovery)
        assert [event.kind for event in chain] == [
            "slo.recovery", "slo.breach", "fault.inject",
        ]

    def test_breach_after_clear_falls_back_to_last_fault(self):
        timeline = Timeline()
        inject = timeline.fault_injected(1.0, "disk_failure")
        timeline.fault_cleared(2.0, inject)
        assert timeline.innermost_open_fault() is inject

    def test_rebuild_span_carries_duration(self):
        timeline = Timeline()
        inject = timeline.fault_injected(1.0, "disk_failure", disk=0)
        timeline.rebuild_started(1.5, disk=0, cause=inject)
        finish = timeline.rebuild_finished(4.0, disk=0, stripes=128)
        assert finish.duration_s == pytest.approx(2.5)
        assert timeline.by_id(finish.cause).kind == "rebuild.start"


class TestExports:
    def test_jsonl_is_byte_stable(self):
        timeline = Timeline()
        _fault_breach_recover_clear(timeline)
        timeline.exposure_sample(3.5, windowed_mttdl_h=math.inf, mdlr=float("nan"))
        first = timeline.to_jsonl()
        assert first == timeline.to_jsonl()
        lines = first.strip().split("\n")
        assert len(lines) == len(timeline)
        payloads = [json.loads(line) for line in lines]
        assert [p["seq"] for p in payloads] == list(range(len(timeline)))
        # Strict JSON: infinities stringified, NaN nulled.
        sample = payloads[-1]["attrs"]
        assert sample["windowed_mttdl_h"] == "inf"
        assert sample["mdlr"] is None

    def test_write_jsonl_round_trips(self, tmp_path):
        timeline = Timeline()
        _fault_breach_recover_clear(timeline)
        path = tmp_path / "timeline.jsonl"
        timeline.write_jsonl(path)
        assert path.read_text() == timeline.to_jsonl()

    def test_chrome_trace_has_spans_and_instants(self):
        timeline = Timeline()
        inject = timeline.fault_injected(1.0, "disk_failure", disk=0)
        timeline.rebuild_started(1.5, disk=0, cause=inject)
        timeline.rebuild_finished(4.0, disk=0)
        trace = timeline.chrome_trace()
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert "X" in phases  # the rebuild span
        assert "i" in phases  # the instants

    def test_prometheus_text_parses_with_labels(self):
        timeline = Timeline()
        _fault_breach_recover_clear(timeline)
        parsed = parse_prometheus_text(timeline.prometheus_text())
        labelled = parsed["labelled"]["timeline_events_total"]
        by_kind = {labels["kind"]: value for labels, value in labelled}
        assert by_kind["fault.inject"] == 1
        assert by_kind["slo.breach"] == 1
        assert parsed["samples"]["timeline_open_faults"] == 0

    def test_render_report_tells_the_story(self):
        timeline = Timeline()
        _fault_breach_recover_clear(timeline)
        hold = timeline.record("nemesis.hold", 1.6, track="nemesis", deferred=2)
        timeline.record(
            "nemesis.resume", 2.6, track="nemesis", cause=hold, released=2, held_s=1.0
        )
        report = timeline.render_report(title="Test incident")
        assert report.startswith("# Test incident")
        assert "disk_failure" in report
        assert "cause chain:" in report
        assert "released 2 deferred fault(s)" in report

    def test_empty_report(self):
        assert "No events recorded" in Timeline().render_report()


class TestInvariants:
    def test_clean_episode_has_no_violations(self):
        timeline = Timeline()
        _fault_breach_recover_clear(timeline)
        assert timeline.check_invariants() == []

    def test_time_going_backwards_is_flagged(self):
        timeline = Timeline()
        timeline.record("a", 5.0)
        timeline.record("b", 4.0)
        assert any("backwards" in p for p in timeline.check_invariants())

    def test_breach_without_fault_cause_is_flagged(self):
        timeline = Timeline()
        timeline.record("slo.breach", 1.0, track="slo", rule="x < 1", value=2.0)
        assert any("not cause-linked" in p for p in timeline.check_invariants())

    def test_unclosed_rebuild_is_flagged(self):
        timeline = Timeline()
        timeline.rebuild_started(1.0, disk=3)
        problems = timeline.check_invariants()
        assert any("never closed" in p for p in problems)
        assert any("still open" in p for p in problems)

    def test_unresumed_hold_is_flagged(self):
        timeline = Timeline()
        timeline.record("nemesis.hold", 1.0, track="nemesis")
        assert any("never resumed" in p for p in timeline.check_invariants())

    def test_resume_without_hold_is_flagged(self):
        timeline = Timeline()
        timeline.record("nemesis.resume", 1.0, track="nemesis")
        assert any("without a matching hold" in p for p in timeline.check_invariants())


class TestLatencyWindows:
    def test_windows_diff_cumulative_histograms(self):
        hists = HistogramSet()
        timeline = Timeline()
        windows = LatencyWindows(hists)
        for _ in range(10):
            hists.record("READ", 1e-3)
        (first,) = windows.sample(1.0, timeline)
        assert first.attrs["request_class"] == "READ"
        assert first.attrs["count"] == 10
        assert first.attrs["p50_ms"] == pytest.approx(1.0, rel=0.2)
        # No new traffic: the next window is silent, not a repeat.
        assert windows.sample(2.0, timeline) == []
        for _ in range(4):
            hists.record("READ", 10e-3)
        (second,) = windows.sample(3.0, timeline)
        assert second.attrs["count"] == 4
        assert second.attrs["p95_ms"] == pytest.approx(10.0, rel=0.2)

    def test_class_filter(self):
        hists = HistogramSet()
        hists.record("READ", 1e-3)
        hists.record("WRITE", 1e-3)
        timeline = Timeline()
        windows = LatencyWindows(hists, classes=("WRITE",))
        (event,) = windows.sample(1.0, timeline)
        assert event.attrs["request_class"] == "WRITE"
