"""Tests for the windowed exposure estimator and the exposure monitor."""

import pytest

from repro.availability import TABLE_1, ParityLagTracker, afraid_mttdl
from repro.obs import (
    ExposureMonitor,
    MetricsRegistry,
    RegistrySnapshotter,
    SloEngine,
    SloRule,
    WindowedExposureEstimator,
    start_exposure_poller,
)
from repro.obs.exposure import DWELL_CLASS
from repro.sim import Simulator


class _StubArray:
    """The minimal surface the monitor touches: ndisks + the lag tracker."""

    def __init__(self, ndisks: int = 5) -> None:
        self.ndisks = ndisks
        self.lag_tracker = ParityLagTracker()
        self.now = 0.0


class TestWindowedExposureEstimator:
    def test_hand_computed_window(self):
        est = WindowedExposureEstimator(window_s=2.0)
        est.record(0.5, 100.0)
        est.record(1.0, 0.0)
        est.record(3.0, 50.0)
        # Window [2, 4]: lag 0 on [2, 3), lag 50 on [3, 4].
        assert est.unprotected_fraction(4.0) == pytest.approx(0.5)
        assert est.mean_lag_bytes(4.0) == pytest.approx(25.0)

    def test_early_window_matches_whole_run(self):
        """Before window_s has elapsed, answers equal the whole-run tracker."""
        est = WindowedExposureEstimator(window_s=100.0)
        tracker = ParityLagTracker()
        for time, lag in ((0.5, 10.0), (1.0, 0.0), (2.0, 30.0), (2.5, 0.0)):
            est.record(time, lag)
            tracker.record(time, lag)
        now = 4.0
        assert est.unprotected_fraction(now) == pytest.approx(
            tracker.snapshot_unprotected_fraction(now)
        )

    def test_backwards_time_rejected(self):
        est = WindowedExposureEstimator(window_s=1.0)
        est.record(2.0, 5.0)
        with pytest.raises(ValueError):
            est.record(1.0, 0.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            WindowedExposureEstimator(window_s=0.0)

    def test_trim_keeps_the_boundary_lag(self):
        """Old events are dropped, but the lag in force at the window start
        must survive (one event at/before the boundary is retained)."""
        est = WindowedExposureEstimator(window_s=1.0)
        est.record(0.0, 100.0)
        for i in range(1, 50):
            est.record(float(i), 100.0 + i)  # distinct values, all positive
        assert est.unprotected_fraction(50.0) == pytest.approx(1.0)
        assert len(est._events) < 10  # deque actually trimmed

    def test_zero_width_window(self):
        est = WindowedExposureEstimator(window_s=5.0)
        assert est.unprotected_fraction(0.0) == 0.0
        assert est.mean_lag_bytes(0.0) == 0.0


class TestExposureMonitor:
    def test_dwell_recording_by_cause(self):
        monitor = ExposureMonitor()
        monitor.stripe_dirtied(7, 1.0)
        monitor.stripe_dirtied(7, 1.5)  # idempotent: first dirtied time wins
        monitor.stripe_cleaned(7, 3.0, cause="scrub")
        monitor.stripe_cleaned(7, 4.0)  # already clean: ignored
        assert monitor.hists.get(DWELL_CLASS).count == 1
        assert monitor.hists.get(f"{DWELL_CLASS}_scrub").count == 1
        assert monitor.open_dwells == 0

    def test_open_dwells_are_censored_not_recorded(self):
        monitor = ExposureMonitor()
        monitor.stripe_dirtied(1, 0.0)
        monitor.finish(10.0)
        assert monitor.open_dwells == 1
        assert monitor.hists.get(DWELL_CLASS).count == 0

    def test_gauges_follow_lag_changes(self):
        registry = MetricsRegistry()
        monitor = ExposureMonitor()
        monitor.attach(_StubArray(), registry)
        monitor.on_lag_change(1.0, 4096.0, dirty_stripes=2, backlog_marks=3)
        assert registry.value("parity_lag_bytes") == 4096.0
        assert registry.value("dirty_stripes") == 2.0
        assert registry.value("scrub_backlog_marks") == 3.0

    def test_counters(self):
        registry = MetricsRegistry()
        monitor = ExposureMonitor()
        monitor.attach(_StubArray(), registry)
        monitor.forced_scrub()
        monitor.stripe_dirtied(0, 0.0)
        monitor.stripe_cleaned(0, 1.0, cause="scrub")
        monitor.stripe_dirtied(1, 0.0)
        monitor.stripe_cleaned(1, 1.0, cause="write")  # not a scrub
        assert registry.value("forced_scrubs_total") == 1.0
        assert registry.value("stripes_scrubbed_total") == 1.0

    def test_registry_histogram_shares_dwell_storage(self):
        registry = MetricsRegistry()
        monitor = ExposureMonitor()
        monitor.attach(_StubArray(), registry)
        monitor.stripe_dirtied(0, 0.0)
        monitor.stripe_cleaned(0, 0.5)
        metric = registry.get("stripe_dirty_dwell_seconds")
        assert metric.hist is monitor.hists.get(DWELL_CLASS)
        assert metric.value == 1.0

    def test_works_without_registry(self):
        monitor = ExposureMonitor()
        monitor.on_lag_change(1.0, 100.0, dirty_stripes=1, backlog_marks=1)
        monitor.forced_scrub()
        monitor.stripe_dirtied(0, 0.0)
        monitor.stripe_cleaned(0, 2.0)
        assert monitor.windowed_unprotected_fraction(2.0) > 0

    def test_achieved_mttdl_matches_analytic_and_refreshes_gauge(self):
        registry = MetricsRegistry()
        array = _StubArray()
        monitor = ExposureMonitor(params=TABLE_1)
        monitor.attach(array, registry)
        array.lag_tracker.record(0.0, 1e6)
        array.lag_tracker.record(5.0, 0.0)
        value = monitor.achieved_mttdl_h(now=10.0)
        expected = afraid_mttdl(
            array.ndisks, TABLE_1.mttf_disk_h, TABLE_1.mttr_h,
            array.lag_tracker.snapshot_unprotected_fraction(10.0),
        )
        assert value == expected
        assert registry.value("achieved_mttdl_h") == expected

    def test_windowed_mttdl_convergence_on_stationary_load(self):
        """Acceptance: on a stationary workload the windowed achieved MTTDL
        converges to eq. (2c) fed the whole-run measured fraction (<10%)."""
        array = _StubArray()
        # Deliberately not a whole number of duty-cycle periods: the window
        # clips a period at its edge, so this is a genuine convergence bound
        # rather than an exact-alignment identity.
        monitor = ExposureMonitor(window_s=9.7, params=TABLE_1)
        monitor.attach(array)
        tracker = ParityLagTracker()
        # Stationary duty cycle: dirty (lag 1 MB) 0.3 s out of every 1.0 s.
        for period in range(60):
            start = float(period)
            for time, lag in ((start, 1e6), (start + 0.3, 0.0)):
                monitor.on_lag_change(time, lag, dirty_stripes=1, backlog_marks=1)
                tracker.record(time, lag)
        now = 60.0
        tracker.finish(now)
        windowed = monitor.windowed_mttdl_h(now)
        analytic = afraid_mttdl(
            array.ndisks, TABLE_1.mttf_disk_h, TABLE_1.mttr_h,
            tracker.unprotected_fraction,
        )
        assert windowed == pytest.approx(analytic, rel=0.10)
        # And the window fraction itself sits near the true duty cycle.
        assert monitor.windowed_unprotected_fraction(now) == pytest.approx(0.3, rel=0.10)


class TestExposurePoller:
    def test_polls_publish_slo_and_snapshots(self):
        sim = Simulator()
        registry = MetricsRegistry()
        array = _StubArray()
        monitor = ExposureMonitor(window_s=1.0, params=TABLE_1)
        monitor.attach(array, registry)
        engine = SloEngine([SloRule.parse("parity_lag_bytes < 50")])
        snaps = RegistrySnapshotter(registry)
        start_exposure_poller(
            sim, monitor, period_s=0.010, engine=engine, snapshotter=snaps, until=0.1
        )

        def load():
            yield sim.timeout(0.035)
            monitor.on_lag_change(sim.now, 100.0, dirty_stripes=1, backlog_marks=1)
            array.lag_tracker.record(sim.now, 100.0)
            yield sim.timeout(0.030)
            monitor.on_lag_change(sim.now, 0.0, dirty_stripes=0, backlog_marks=0)
            array.lag_tracker.record(sim.now, 0.0)

        sim.process(load())
        sim.run()
        assert len(snaps.snaps) == 11  # t = 0.00 .. 0.10 inclusive
        assert engine.any_breached_ever
        kinds = [e.kind for e in engine.events]
        assert kinds == ["breach", "recovery"]
        times, values = snaps.series("windowed_unprotected_fraction")
        assert max(values) > 0  # the poller refreshed the derived gauges

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            start_exposure_poller(Simulator(), ExposureMonitor(), period_s=0.0)
