"""Tests for the structured tracer and its Chrome trace export."""

import json

import pytest

from repro.obs import Tracer
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestRecording:
    def test_unbound_tracer_cannot_stamp(self):
        with pytest.raises(RuntimeError):
            Tracer().instant("x")

    def test_span_records_simulated_interval(self, sim):
        tracer = Tracer(sim)

        def proc():
            with tracer.span("work", track="t", category="c", detail=1):
                yield sim.timeout(0.25)

        sim.process(proc())
        sim.run()
        (record,) = tracer.spans_on("t")
        kind, start_s, duration_s, name, track, category, args = record
        assert (kind, name, track, category) == ("X", "work", "t", "c")
        assert start_s == 0.0
        assert duration_s == pytest.approx(0.25)
        assert args == {"detail": 1}

    def test_begin_end_without_context_manager(self, sim):
        tracer = Tracer(sim)
        token = tracer.begin("op")
        tracer.end(token)
        assert len(tracer) == 1

    def test_complete_is_retroactive(self, sim):
        tracer = Tracer(sim)
        tracer.complete("old", start_s=1.0, duration_s=0.5, track="t")
        (record,) = tracer.spans_on("t")
        assert record[1] == 1.0 and record[2] == 0.5

    def test_instants_and_counters(self, sim):
        tracer = Tracer(sim)

        def proc():
            tracer.instant("fault", track="f", disk=3)
            tracer.counter("lag", 10.0)
            yield sim.timeout(0.1)
            tracer.counter("lag", 20.0)

        sim.process(proc())
        sim.run()
        (instant,) = tracer.instants_named("fault")
        assert instant[5] == {"disk": 3}
        assert tracer.counter_series("lag") == [(0.0, 10.0), (pytest.approx(0.1), 20.0)]

    def test_bounded_memory_drops_and_counts(self, sim):
        tracer = Tracer(sim, max_records=2)
        for _ in range(5):
            tracer.counter("x", 1.0)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_max_records_validation(self):
        with pytest.raises(ValueError):
            Tracer(max_records=0)


class TestKernelHook:
    def test_attach_records_dispatches(self, sim):
        tracer = Tracer()
        tracer.attach_kernel(sim)

        def proc():
            yield sim.timeout(0.1)

        sim.process(proc())
        sim.run()
        kernel = [r for r in tracer.records if r[3] == "kernel"]
        assert kernel  # every dispatch became an instant

    def test_detach_stops_recording(self, sim):
        tracer = Tracer()
        tracer.attach_kernel(sim)
        tracer.detach_kernel()

        def proc():
            yield sim.timeout(0.1)

        sim.process(proc())
        sim.run()
        assert len(tracer) == 0

    def test_attach_without_simulator_rejected(self):
        with pytest.raises(RuntimeError):
            Tracer().attach_kernel()


class TestChromeExport:
    def build(self, sim):
        tracer = Tracer(sim)

        def proc():
            with tracer.span("op", track="alpha"):
                yield sim.timeout(0.010)
            tracer.instant("tick", track="beta")
            tracer.counter("depth", 4.0)

        sim.process(proc())
        sim.run()
        return tracer

    def test_event_shapes_and_microsecond_timestamps(self, sim):
        payload = self.build(sim).chrome_trace()
        events = payload["traceEvents"]
        by_phase = {}
        for event in events:
            by_phase.setdefault(event["ph"], []).append(event)
        (span,) = by_phase["X"]
        assert span["dur"] == pytest.approx(10_000)  # 10 ms in µs
        (instant,) = by_phase["i"]
        assert instant["s"] == "t"
        (counter,) = by_phase["C"]
        assert counter["args"] == {"value": 4.0}
        thread_names = {m["args"]["name"] for m in by_phase["M"]}
        assert {"alpha", "beta"} <= thread_names

    def test_tracks_get_distinct_tids(self, sim):
        events = self.build(sim).chrome_trace()["traceEvents"]
        tids = {e["tid"] for e in events if e["ph"] == "M"}
        assert len(tids) == len([e for e in events if e["ph"] == "M"])

    def test_write_chrome_is_loadable_json(self, sim, tmp_path):
        path = tmp_path / "trace.json"
        self.build(sim).write_chrome(path)
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        assert payload["otherData"]["dropped_records"] == 0

    def test_write_jsonl_one_object_per_record(self, sim, tmp_path):
        tracer = self.build(sim)
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == len(tracer)
        assert {line["kind"] for line in lines} == {"span", "instant", "counter"}
