"""Tests for the back-end disk driver."""

import pytest

from repro.disk import DiskFailedError, DiskIO, IoKind, toy_disk
from repro.sched import ClookScheduler, DiskDriver
from repro.sim import AllOf, Simulator


@pytest.fixture()
def sim():
    return Simulator()


def test_single_io_completes_with_breakdown(sim):
    disk = toy_disk(sim)
    driver = DiskDriver(sim, disk)
    done = driver.submit(DiskIO(IoKind.READ, 0, 4))
    breakdown = sim.run_until_triggered(done)
    assert breakdown.total > 0.0
    assert driver.stats.completed == 1


def test_commands_serialise_fcfs(sim):
    disk = toy_disk(sim)
    driver = DiskDriver(sim, disk)
    finish_times = {}

    def client(tag, lba):
        yield driver.submit(DiskIO(IoKind.READ, lba, 2))
        finish_times[tag] = sim.now

    # Submit far-then-near: FCFS must preserve submission order even though
    # the second is closer to the head.
    sim.process(client("far", disk.geometry.total_sectors - 16))
    sim.process(client("near", 0))
    sim.run()
    assert finish_times["far"] < finish_times["near"]


def test_clook_back_end_reorders(sim):
    disk = toy_disk(sim)
    driver = DiskDriver(sim, disk, scheduler=ClookScheduler())
    finish_times = {}

    def client(tag, lba):
        yield driver.submit(DiskIO(IoKind.READ, lba, 2))
        finish_times[tag] = sim.now

    def burst():
        # First I/O starts the pump; queue three more while it is in service.
        sim.process(client("first", 0))
        yield sim.timeout(1e-6)
        sim.process(client("high", disk.geometry.total_sectors - 16))
        sim.process(client("low", 64))
        yield sim.timeout(0)

    sim.process(burst())
    sim.run()
    assert finish_times["low"] < finish_times["high"]  # C-LOOK sweeps upward from 0


def test_queue_depth_visible(sim):
    disk = toy_disk(sim)
    driver = DiskDriver(sim, disk)
    for lba in (0, 100, 200):
        driver.submit(DiskIO(IoKind.READ, lba, 1))
    sim.run(until=1e-9)  # let the pump take the first command into service
    assert driver.queued == 2
    assert driver.busy
    sim.run()
    assert driver.queued == 0
    assert not driver.busy


def test_disk_failure_fails_queued_commands(sim):
    disk = toy_disk(sim)
    driver = DiskDriver(sim, disk)
    outcomes = []

    def client(lba):
        try:
            yield driver.submit(DiskIO(IoKind.READ, lba, 32))
            outcomes.append("ok")
        except DiskFailedError:
            outcomes.append("failed")

    for lba in (0, 512, 1024):
        sim.process(client(lba))

    def saboteur():
        yield sim.timeout(1e-4)
        disk.fail()

    sim.process(saboteur())
    sim.run()
    assert outcomes == ["failed", "failed", "failed"]
    assert driver.stats.failed == 3


def test_queue_time_accounted(sim):
    disk = toy_disk(sim)
    driver = DiskDriver(sim, disk)
    events = [driver.submit(DiskIO(IoKind.READ, lba, 64)) for lba in (0, 2048)]
    sim.run_until_triggered(AllOf(sim, events))
    # The second command waited for the first: some queue time must accrue.
    assert driver.stats.queue_time > 0.0
    assert driver.stats.mean_queue_time > 0.0


def test_pump_restarts_after_drain(sim):
    disk = toy_disk(sim)
    driver = DiskDriver(sim, disk)
    first = driver.submit(DiskIO(IoKind.READ, 0, 1))
    sim.run_until_triggered(first)
    assert not driver.busy
    second = driver.submit(DiskIO(IoKind.READ, 64, 1))
    breakdown = sim.run_until_triggered(second)
    assert breakdown.total > 0.0
    assert driver.stats.completed == 2
