"""Tests for the queue disciplines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import ClookScheduler, FcfsScheduler, LookScheduler, SstfScheduler


def drain(scheduler, head=0, follow_head=True):
    """Pop everything, optionally moving the head to each popped position."""
    order = []
    position = head
    while scheduler:
        item, popped_position = scheduler.pop(position)
        order.append(item)
        if follow_head:
            position = popped_position
    return order


class TestFcfs:
    def test_arrival_order(self):
        scheduler = FcfsScheduler()
        for i, position in enumerate([50, 10, 90, 30]):
            scheduler.push(f"io{i}", position)
        assert drain(scheduler) == ["io0", "io1", "io2", "io3"]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FcfsScheduler().pop(0)

    def test_len_and_bool(self):
        scheduler = FcfsScheduler()
        assert not scheduler
        scheduler.push("a", 1)
        assert len(scheduler) == 1
        assert scheduler


class TestClook:
    def test_sweeps_upward_then_wraps(self):
        scheduler = ClookScheduler()
        for item, position in [("a", 50), ("b", 10), ("c", 90), ("d", 30)]:
            scheduler.push(item, position)
        # head at 40: sweep up (50, 90), wrap to bottom (10, 30)
        assert drain(scheduler, head=40) == ["a", "c", "b", "d"]

    def test_exact_head_position_served_first(self):
        scheduler = ClookScheduler()
        scheduler.push("here", 40)
        scheduler.push("above", 60)
        assert drain(scheduler, head=40) == ["here", "above"]

    def test_ties_fifo(self):
        scheduler = ClookScheduler()
        scheduler.push("first", 10)
        scheduler.push("second", 10)
        assert drain(scheduler, head=0) == ["first", "second"]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            ClookScheduler().pop(0)

    @given(positions=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_single_sweep_visits_all_without_reversing(self, positions):
        """Popping with a following head yields at most one wrap-around."""
        scheduler = ClookScheduler()
        for i, position in enumerate(positions):
            scheduler.push(i, position)
        popped = []
        head = 0
        while scheduler:
            _item, position = scheduler.pop(head)
            popped.append(position)
            head = position
        descents = sum(1 for a, b in zip(popped, popped[1:]) if b < a)
        assert descents <= 1
        assert sorted(popped) == sorted(positions)


class TestSstf:
    def test_picks_nearest(self):
        scheduler = SstfScheduler()
        for item, position in [("far", 100), ("near", 55), ("also", 10)]:
            scheduler.push(item, position)
        item, _ = scheduler.pop(50)
        assert item == "near"

    def test_below_only(self):
        scheduler = SstfScheduler()
        scheduler.push("below", 5)
        item, _ = scheduler.pop(50)
        assert item == "below"

    @given(
        positions=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=40),
        head=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_first_pop_is_globally_nearest(self, positions, head):
        scheduler = SstfScheduler()
        for i, position in enumerate(positions):
            scheduler.push(i, position)
        _item, position = scheduler.pop(head)
        assert abs(position - head) == min(abs(p - head) for p in positions)


class TestLook:
    def test_reverses_at_extremes(self):
        scheduler = LookScheduler()
        for item, position in [("a", 10), ("b", 60), ("c", 90), ("d", 40)]:
            scheduler.push(item, position)
        # head at 50 ascending: 60, 90, then reverse: 40, 10
        assert drain(scheduler, head=50) == ["b", "c", "d", "a"]

    @given(positions=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_serves_everything(self, positions):
        scheduler = LookScheduler()
        for i, position in enumerate(positions):
            scheduler.push(i, position)
        assert len(drain(scheduler, head=500)) == len(positions)
