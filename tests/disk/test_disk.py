"""Tests for the mechanical disk timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import DiskFailedError, DiskIO, IoKind, hp_c3325, toy_disk
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator()


def run_io(sim, disk, io):
    """Execute one I/O and return its ServiceBreakdown."""
    done = disk.execute(io)
    return sim.run_until_triggered(done)


class TestValidation:
    def test_io_needs_positive_sectors(self):
        with pytest.raises(ValueError):
            DiskIO(IoKind.READ, lba=0, nsectors=0)

    def test_io_needs_nonnegative_lba(self):
        with pytest.raises(ValueError):
            DiskIO(IoKind.READ, lba=-1, nsectors=1)

    def test_overlapping_commands_rejected(self, sim):
        disk = toy_disk(sim)
        disk.execute(DiskIO(IoKind.READ, 0, 1))
        with pytest.raises(RuntimeError):
            disk.execute(DiskIO(IoKind.READ, 100, 1))


class TestTimingComponents:
    def test_single_sector_read_time_is_plausible(self, sim):
        disk = hp_c3325(sim)
        breakdown = run_io(sim, disk, DiskIO(IoKind.READ, 1000, 1))
        # overhead + no/short seek + up to one revolution + 1 sector
        assert 0.0 < breakdown.total < 0.040
        assert breakdown.rotational_latency <= disk.rotation_period

    def test_seek_charged_for_distant_access(self, sim):
        disk = hp_c3325(sim)
        run_io(sim, disk, DiskIO(IoKind.READ, 0, 1))
        far_lba = disk.geometry.total_sectors - 1
        breakdown = run_io(sim, disk, DiskIO(IoKind.READ, far_lba, 1))
        assert breakdown.seek == pytest.approx(0.018, rel=0.05)  # full stroke

    def test_no_seek_for_same_cylinder(self, sim):
        disk = hp_c3325(sim)
        run_io(sim, disk, DiskIO(IoKind.READ, 100, 1))
        breakdown = run_io(sim, disk, DiskIO(IoKind.READ, 102, 1))
        assert breakdown.seek == 0.0

    def test_sequential_streaming_rate_near_5mb_per_s(self, sim):
        """The paper's own figure: ~5 MB/s sustained reads."""
        disk = hp_c3325(sim)
        assert disk.sustained_read_rate() == pytest.approx(5.0e6, rel=0.15)

    def test_large_transfer_dominated_by_media_rate(self, sim):
        disk = hp_c3325(sim)
        nsectors = 4096  # 2 MB
        breakdown = run_io(sim, disk, DiskIO(IoKind.READ, 0, nsectors))
        media_time = nsectors * 512 / disk.sustained_read_rate()
        assert breakdown.total == pytest.approx(media_time, rel=0.35)
        assert breakdown.transfer > 10 * (breakdown.seek + breakdown.rotational_latency)

    def test_rotational_latency_depends_on_issue_time(self, sim):
        """Spin position is a function of absolute time."""
        disk_a = hp_c3325(sim, name="a")
        breakdown_a = run_io(sim, disk_a, DiskIO(IoKind.READ, 5000, 1))
        # Re-issue the identical I/O on a fresh disk at a different time.
        sim.run(until=sim.now + 0.0042)
        disk_b = hp_c3325(sim, name="b")
        breakdown_b = run_io(sim, disk_b, DiskIO(IoKind.READ, 5000, 1))
        assert breakdown_a.rotational_latency != pytest.approx(
            breakdown_b.rotational_latency, abs=1e-6
        )

    def test_spin_synchronised_disks_agree(self, sim):
        """Equal phase + equal time + equal target ⇒ equal latency."""
        disk_a = hp_c3325(sim, name="a")
        disk_b = hp_c3325(sim, name="b")
        ba = disk_a.compute_service(DiskIO(IoKind.READ, 7777, 4), sim.now)
        bb = disk_b.compute_service(DiskIO(IoKind.READ, 7777, 4), sim.now)
        assert ba.rotational_latency == pytest.approx(bb.rotational_latency, abs=1e-12)


class TestState:
    def test_busy_during_service(self, sim):
        disk = toy_disk(sim)
        disk.execute(DiskIO(IoKind.READ, 0, 8))
        assert disk.busy
        sim.run()
        assert not disk.busy

    def test_arm_position_updates(self, sim):
        disk = toy_disk(sim)
        target = disk.geometry.total_sectors // 2
        run_io(sim, disk, DiskIO(IoKind.READ, target, 1))
        assert disk.current_cylinder == disk.geometry.cylinder_of(target)

    def test_stats_accumulate(self, sim):
        disk = toy_disk(sim)
        run_io(sim, disk, DiskIO(IoKind.READ, 0, 4))
        run_io(sim, disk, DiskIO(IoKind.WRITE, 64, 2))
        assert disk.stats.reads == 1
        assert disk.stats.writes == 1
        assert disk.stats.sectors_read == 4
        assert disk.stats.sectors_written == 2
        assert disk.stats.busy_time > 0.0
        assert disk.stats.ios == 2


class TestFailure:
    def test_failed_disk_rejects_io(self, sim):
        disk = toy_disk(sim)
        disk.fail()
        done = disk.execute(DiskIO(IoKind.READ, 0, 1))
        done.defused = True
        sim.run()
        assert isinstance(done.exception, DiskFailedError)

    def test_mid_flight_failure(self, sim):
        disk = toy_disk(sim)
        done = disk.execute(DiskIO(IoKind.READ, 0, 64))
        done.defused = True

        def saboteur():
            yield sim.timeout(1e-4)
            disk.fail()

        sim.process(saboteur())
        sim.run()
        assert isinstance(done.exception, DiskFailedError)

    def test_repair_restores_service(self, sim):
        disk = toy_disk(sim)
        disk.fail()
        disk.repair()
        breakdown = run_io(sim, disk, DiskIO(IoKind.READ, 0, 1))
        assert breakdown.total > 0.0


class TestTimingProperties:
    @given(
        lba=st.integers(min_value=0, max_value=4000),
        nsectors=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_service_time_positive_and_bounded(self, lba, nsectors):
        sim = Simulator()
        disk = toy_disk(sim)
        breakdown = disk.compute_service(DiskIO(IoKind.READ, lba, nsectors), 0.0)
        assert breakdown.total > 0.0
        # overhead + max seek + latency + transfer with a missed-rev allowance per track
        tracks = nsectors // disk.geometry.zones[0].sectors_per_track + 2
        bound = 0.001 + 0.010 + disk.rotation_period * (1 + tracks) + nsectors * disk.rotation_period
        assert breakdown.total < bound

    @given(nsectors=st.integers(min_value=1, max_value=256))
    @settings(max_examples=50, deadline=None)
    def test_transfer_monotone_in_size(self, nsectors):
        sim = Simulator()
        disk = toy_disk(sim, cylinders=128)
        small = disk.compute_service(DiskIO(IoKind.READ, 0, nsectors), 0.0)
        large = disk.compute_service(DiskIO(IoKind.READ, 0, nsectors + 1), 0.0)
        assert large.transfer >= small.transfer
