"""Unit and property tests for zoned disk geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import DiskGeometry, Zone, c3325_geometry


def simple_geometry():
    return DiskGeometry(
        heads=2,
        zones=[Zone(cylinders=4, sectors_per_track=8), Zone(cylinders=4, sectors_per_track=4)],
        sector_bytes=512,
    )


class TestValidation:
    def test_zone_needs_positive_cylinders(self):
        with pytest.raises(ValueError):
            Zone(cylinders=0, sectors_per_track=8)

    def test_zone_needs_positive_spt(self):
        with pytest.raises(ValueError):
            Zone(cylinders=1, sectors_per_track=0)

    def test_needs_heads(self):
        with pytest.raises(ValueError):
            DiskGeometry(heads=0, zones=[Zone(1, 8)])

    def test_needs_zones(self):
        with pytest.raises(ValueError):
            DiskGeometry(heads=1, zones=[])


class TestCapacity:
    def test_total_sectors(self):
        geometry = simple_geometry()
        # zone 0: 4 cyl * 2 heads * 8 spt = 64; zone 1: 4 * 2 * 4 = 32
        assert geometry.total_sectors == 96
        assert geometry.capacity_bytes == 96 * 512
        assert geometry.cylinders == 8

    def test_c3325_is_about_2gb(self):
        geometry = c3325_geometry()
        assert 1.9e9 < geometry.capacity_bytes < 2.1e9


class TestMapping:
    def test_lba_zero_is_origin(self):
        addr = simple_geometry().lba_to_physical(0)
        assert (addr.cylinder, addr.head, addr.sector) == (0, 0, 0)

    def test_track_boundary(self):
        geometry = simple_geometry()
        addr = geometry.lba_to_physical(8)  # first sector of second track
        assert (addr.cylinder, addr.head, addr.sector) == (0, 1, 0)

    def test_cylinder_boundary(self):
        geometry = simple_geometry()
        addr = geometry.lba_to_physical(16)  # 2 heads * 8 spt sectors per cylinder
        assert (addr.cylinder, addr.head, addr.sector) == (1, 0, 0)

    def test_zone_boundary(self):
        geometry = simple_geometry()
        addr = geometry.lba_to_physical(64)  # first sector of the inner zone
        assert (addr.cylinder, addr.head, addr.sector) == (4, 0, 0)
        assert addr.sectors_per_track == 4

    def test_out_of_range_lba(self):
        geometry = simple_geometry()
        with pytest.raises(ValueError):
            geometry.lba_to_physical(96)
        with pytest.raises(ValueError):
            geometry.lba_to_physical(-1)

    def test_physical_validation(self):
        geometry = simple_geometry()
        with pytest.raises(ValueError):
            geometry.physical_to_lba(0, 2, 0)  # no such head
        with pytest.raises(ValueError):
            geometry.physical_to_lba(8, 0, 0)  # no such cylinder
        with pytest.raises(ValueError):
            geometry.physical_to_lba(4, 0, 4)  # inner zone has 4 spt

    def test_sectors_per_track_at(self):
        geometry = simple_geometry()
        assert geometry.sectors_per_track_at(0) == 8
        assert geometry.sectors_per_track_at(4) == 4


class TestRoundTrip:
    @given(lba=st.integers(min_value=0, max_value=95))
    @settings(max_examples=96, deadline=None)
    def test_small_geometry_bijection(self, lba):
        geometry = simple_geometry()
        addr = geometry.lba_to_physical(lba)
        assert geometry.physical_to_lba(addr.cylinder, addr.head, addr.sector) == lba

    @given(lba=st.integers(min_value=0))
    @settings(max_examples=200, deadline=None)
    def test_c3325_bijection(self, lba):
        geometry = c3325_geometry()
        lba = lba % geometry.total_sectors
        addr = geometry.lba_to_physical(lba)
        assert geometry.physical_to_lba(addr.cylinder, addr.head, addr.sector) == lba

    def test_mapping_is_monotone_in_cylinder(self):
        """Increasing LBA never decreases the cylinder number."""
        geometry = c3325_geometry()
        step = geometry.total_sectors // 1000
        previous = -1
        for lba in range(0, geometry.total_sectors, step):
            cylinder = geometry.cylinder_of(lba)
            assert cylinder >= previous
            previous = cylinder


class TestTrackSegments:
    def test_single_track_run(self):
        geometry = simple_geometry()
        segments = list(geometry.track_segments(2, 3))
        assert len(segments) == 1
        addr, run = segments[0]
        assert (addr.sector, run) == (2, 3)

    def test_run_crossing_tracks(self):
        geometry = simple_geometry()
        segments = list(geometry.track_segments(6, 6))  # sectors 6,7 then 0..3 of next track
        assert [(a.head, a.sector, n) for a, n in segments] == [(0, 6, 2), (1, 0, 4)]

    def test_run_crossing_zones(self):
        geometry = simple_geometry()
        segments = list(geometry.track_segments(62, 4))
        # last 2 sectors of outer zone's final track, then 2 sectors at 4 spt
        assert [(a.cylinder, a.sectors_per_track, n) for a, n in segments] == [
            (3, 8, 2),
            (4, 4, 2),
        ]

    def test_lengths_sum(self):
        geometry = c3325_geometry()
        total = sum(run for _addr, run in geometry.track_segments(12345, 5000))
        assert total == 5000

    def test_past_end_rejected(self):
        geometry = simple_geometry()
        with pytest.raises(ValueError):
            list(geometry.track_segments(90, 10))
