"""Tests for the optional drive-level caches (immediate report, read-ahead)."""

import pytest

from repro.disk import DiskIO, IoKind, MechanicalDisk
from repro.disk.models import c3325_geometry, c3325_seek_model
from repro.sched import DiskDriver
from repro.sim import Simulator


def make_disk(sim, **kwargs):
    return MechanicalDisk(
        sim=sim,
        geometry=c3325_geometry(),
        seek_model=c3325_seek_model(),
        rpm=5400.0,
        controller_overhead_s=0.0007,
        head_switch_s=0.0008,
        **kwargs,
    )


def run_io(sim, disk, io):
    done = disk.execute(io)
    return sim.run_until_triggered(done)


class TestImmediateReport:
    def test_write_completes_at_overhead_time(self):
        sim = Simulator()
        disk = make_disk(sim, immediate_report=True)
        start = sim.now
        run_io(sim, disk, DiskIO(IoKind.WRITE, 10_000, 16))
        assert sim.now - start == pytest.approx(disk.controller_overhead_s)
        # The mechanism is still writing the media.
        assert disk.busy

    def test_reads_unaffected(self):
        sim = Simulator()
        disk = make_disk(sim, immediate_report=True)
        breakdown = run_io(sim, disk, DiskIO(IoKind.READ, 10_000, 16))
        assert sim.now == pytest.approx(breakdown.total)

    def test_disabled_by_default(self):
        sim = Simulator()
        disk = make_disk(sim)
        start = sim.now
        breakdown = run_io(sim, disk, DiskIO(IoKind.WRITE, 10_000, 16))
        assert sim.now - start == pytest.approx(breakdown.total)
        assert not disk.busy

    def test_driver_waits_for_mechanism(self):
        """Back-to-back immediate-report writes cannot overlap on media."""
        sim = Simulator()
        disk = make_disk(sim, immediate_report=True)
        driver = DiskDriver(sim, disk)
        for i in range(3):
            driver.submit(DiskIO(IoKind.WRITE, i * 5000, 16))
        sim.run()
        assert driver.stats.completed == 3
        assert disk.stats.writes == 3


class TestReadAhead:
    def test_sequential_reread_hits_segment(self):
        sim = Simulator()
        disk = make_disk(sim, readahead_segments=2)
        run_io(sim, disk, DiskIO(IoKind.READ, 10_000, 16))
        # The rest of the track is now buffered; the next sequential read
        # costs only command overhead.
        start = sim.now
        run_io(sim, disk, DiskIO(IoKind.READ, 10_016, 16))
        assert sim.now - start == pytest.approx(disk.controller_overhead_s)
        assert disk.stats.readahead_hits == 1

    def test_random_read_misses(self):
        sim = Simulator()
        disk = make_disk(sim, readahead_segments=2)
        run_io(sim, disk, DiskIO(IoKind.READ, 10_000, 16))
        run_io(sim, disk, DiskIO(IoKind.READ, 2_000_000, 16))
        assert disk.stats.readahead_hits == 0

    def test_write_invalidates_overlapping_segment(self):
        sim = Simulator()
        disk = make_disk(sim, readahead_segments=2)
        run_io(sim, disk, DiskIO(IoKind.READ, 10_000, 16))
        run_io(sim, disk, DiskIO(IoKind.WRITE, 10_016, 16))
        start = sim.now
        run_io(sim, disk, DiskIO(IoKind.READ, 10_016, 16))
        assert sim.now - start > disk.controller_overhead_s * 2  # media access
        assert disk.stats.readahead_hits == 0

    def test_lru_eviction(self):
        sim = Simulator()
        disk = make_disk(sim, readahead_segments=1)
        run_io(sim, disk, DiskIO(IoKind.READ, 10_000, 16))
        run_io(sim, disk, DiskIO(IoKind.READ, 2_000_000, 16))  # evicts the first
        start = sim.now
        run_io(sim, disk, DiskIO(IoKind.READ, 10_016, 16))
        assert sim.now - start > disk.controller_overhead_s * 2

    def test_disabled_by_default(self):
        sim = Simulator()
        disk = make_disk(sim)
        run_io(sim, disk, DiskIO(IoKind.READ, 10_000, 16))
        start = sim.now
        run_io(sim, disk, DiskIO(IoKind.READ, 10_016, 16))
        assert sim.now - start > disk.controller_overhead_s * 2
        assert disk.stats.readahead_hits == 0
