"""Vectorised disk-service kernel: bit-exact against the scalar chain.

``batch_service_parts`` (repro.disk.vector) promises every float it
returns is **bit-identical** to issuing the same commands one at a time
through ``_service_parts`` — the golden-replay gate rests on that.  These
tests grind randomized command runs through both paths and compare with
``==`` on raw floats (no tolerance), plus pin the fallback triggers.
"""

import random

import pytest

from repro.disk import DiskIO, IoKind, hp_c3325, toy_disk
from repro.disk import vector
from repro.disk.vector import VECTOR_MIN, batch_service_parts
from repro.sim import Simulator


def _scalar_chain(disk, ios, start_time):
    """Reference: the sequential scalar walk batch_service_parts replays."""
    orig = (disk._current_cylinder, disk._current_head)
    start = start_time
    results = []
    try:
        for io in ios:
            seek, rot, transfer, cylinder, head = disk._service_parts(
                io.lba, io.nsectors, start
            )
            total = disk.controller_overhead_s + seek + rot + transfer
            results.append((seek, rot, transfer, cylinder, head, total))
            disk._current_cylinder = cylinder
            disk._current_head = head
            start = start + total
    finally:
        disk._current_cylinder, disk._current_head = orig
    return results


def _reorder(scalar_parts):
    """Match batch_service_parts' tuple layout (cylinder/head after transfer)."""
    return [(s, r, t, c, h, tot) for s, r, t, c, h, tot in scalar_parts]


def _random_run(disk, rng, k, single_track_only):
    geometry = disk.geometry
    ios = []
    while len(ios) < k:
        lba = rng.randrange(geometry.total_sectors - 64)
        nsectors = rng.choice([1, 2, 4, 8, 16])
        if single_track_only:
            # Keep within one track so the numpy decode covers it.
            _zone, spt, _cyl, _head, sector = _decode(geometry, lba)
            if spt - sector < nsectors:
                continue
        kind = IoKind.READ if rng.random() < 0.5 else IoKind.WRITE
        ios.append(DiskIO(kind, lba, nsectors))
    return ios


def _decode(geometry, lba):
    zone_index = 0
    for index, first in enumerate(geometry._zone_first_lba):
        if lba >= first:
            zone_index = index
    first_lba = geometry._zone_first_lba[zone_index]
    spt = geometry.zones[zone_index].sectors_per_track
    offset = lba - first_lba
    per_cyl = geometry.heads * spt
    cylinder = geometry._zone_first_cyl[zone_index] + offset // per_cyl
    within = offset % per_cyl
    return zone_index, spt, cylinder, within // spt, within % spt


@pytest.fixture(params=["hp_c3325", "toy"])
def disk(request):
    sim = Simulator()
    if request.param == "hp_c3325":
        return hp_c3325(sim)
    return toy_disk(sim)


class TestBitExactness:
    @pytest.mark.parametrize("seed", range(6))
    def test_vectorised_run_matches_scalar_chain(self, disk, seed):
        rng = random.Random(seed)
        k = rng.randrange(VECTOR_MIN, 4 * VECTOR_MIN)
        ios = _random_run(disk, rng, k, single_track_only=True)
        start = rng.random() * 50.0
        got = batch_service_parts(disk, ios, start)
        want = _reorder(_scalar_chain(disk, ios, start))
        assert got == want  # exact float equality, element by element

    @pytest.mark.parametrize("seed", range(6, 10))
    def test_mixed_runs_with_fallback_commands(self, disk, seed):
        # Multi-track and zone-crossing commands force the per-command
        # scalar fallback mid-chain; the chain must stay exact around them.
        rng = random.Random(seed)
        ios = _random_run(disk, rng, 3 * VECTOR_MIN, single_track_only=False)
        got = batch_service_parts(disk, ios, 7.25)
        want = _reorder(_scalar_chain(disk, ios, 7.25))
        assert got == want

    def test_nonzero_head_position_start(self, disk):
        rng = random.Random(99)
        warm = _random_run(disk, rng, 1, single_track_only=False)[0]
        _, _, _, cylinder, head = disk._service_parts(warm.lba, warm.nsectors, 0.0)
        disk._current_cylinder = cylinder
        disk._current_head = head
        ios = _random_run(disk, rng, VECTOR_MIN, single_track_only=True)
        assert batch_service_parts(disk, ios, 3.5) == _reorder(
            _scalar_chain(disk, ios, 3.5)
        )

    def test_disk_state_not_mutated(self, disk):
        rng = random.Random(5)
        disk._current_cylinder, disk._current_head = 17, 1
        ios = _random_run(disk, rng, 2 * VECTOR_MIN, single_track_only=False)
        before = (disk._current_cylinder, disk._current_head)
        batch_service_parts(disk, ios, 1.0)
        assert (disk._current_cylinder, disk._current_head) == before


class TestFallbackTriggers:
    def test_short_runs_skip_the_decode(self, disk, monkeypatch):
        calls = []
        real = vector._vector_decode
        monkeypatch.setattr(
            vector, "_vector_decode", lambda *args: calls.append(1) or real(*args)
        )
        rng = random.Random(1)
        short = _random_run(disk, rng, VECTOR_MIN - 1, single_track_only=True)
        batch_service_parts(disk, short, 0.0)
        assert calls == []  # below the threshold: pure scalar chain
        long = _random_run(disk, rng, VECTOR_MIN, single_track_only=True)
        batch_service_parts(disk, long, 0.0)
        assert calls == [1]

    def test_without_numpy_results_identical(self, disk, monkeypatch):
        rng = random.Random(2)
        ios = _random_run(disk, rng, 2 * VECTOR_MIN, single_track_only=False)
        with_numpy = batch_service_parts(disk, ios, 4.0)
        monkeypatch.setattr(vector, "_np", None)
        without = batch_service_parts(disk, ios, 4.0)
        assert with_numpy == without

    def test_multitrack_command_uses_exact_scalar(self, disk):
        # A command spanning a whole cylinder can never take the numpy
        # lane; alone past the threshold it must still be exact.
        geometry = disk.geometry
        spt = geometry.zones[0].sectors_per_track
        big = DiskIO(IoKind.WRITE, 0, spt * geometry.heads + 3)
        ios = [big] + _random_run(
            disk, random.Random(3), 2 * VECTOR_MIN, single_track_only=True
        )
        assert batch_service_parts(disk, ios, 0.5) == _reorder(
            _scalar_chain(disk, ios, 0.5)
        )
