"""Latent sector errors on the mechanical disk and their repair paths."""

import pytest

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import DiskIO, IoKind, LatentSectorError, toy_disk
from repro.policy import NeverScrubPolicy
from repro.sim import Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestDiskLevel:
    def test_read_of_latent_sector_fails_with_media_error(self, sim):
        disk = toy_disk(sim)
        disk.inject_latent_error(100)
        done = disk.execute(DiskIO(IoKind.READ, 96, 8))
        with pytest.raises(LatentSectorError) as excinfo:
            sim.run_until_triggered(done)
        assert excinfo.value.lbas == [100]
        assert excinfo.value.disk_name == disk.name

    def test_read_elsewhere_is_unaffected(self, sim):
        disk = toy_disk(sim)
        disk.inject_latent_error(100)
        done = disk.execute(DiskIO(IoKind.READ, 0, 8))
        sim.run_until_triggered(done)  # no exception

    def test_failed_read_takes_full_mechanical_time(self, sim):
        clean = toy_disk(sim)
        done = clean.execute(DiskIO(IoKind.READ, 96, 8))
        breakdown = sim.run_until_triggered(done)
        healthy_time = breakdown.total

        sim2 = Simulator()
        sick = toy_disk(sim2)
        sick.inject_latent_error(100)
        done = sick.execute(DiskIO(IoKind.READ, 96, 8))
        with pytest.raises(LatentSectorError):
            sim2.run_until_triggered(done)
        # The drive made the full attempt before reporting the error.
        assert sim2.now == pytest.approx(healthy_time)

    def test_write_heals_the_sector(self, sim):
        disk = toy_disk(sim)
        disk.inject_latent_error(100)
        done = disk.execute(DiskIO(IoKind.WRITE, 96, 8))
        sim.run_until_triggered(done)
        assert disk.latent_error_count == 0
        done = disk.execute(DiskIO(IoKind.READ, 96, 8))
        sim.run_until_triggered(done)  # readable again

    def test_injection_validates_lba(self, sim):
        disk = toy_disk(sim)
        with pytest.raises(ValueError):
            disk.inject_latent_error(disk.geometry.total_sectors)

    def test_latent_errors_within(self, sim):
        disk = toy_disk(sim)
        disk.inject_latent_error(10)
        disk.inject_latent_error(20)
        assert disk.latent_errors_within(0, 15) == [10]
        assert disk.latent_errors_within(0, 32) == [10, 20]
        assert disk.latent_errors_within(11, 5) == []

    def test_failed_lse_read_does_not_populate_readahead(self, sim):
        disk = toy_disk(sim)
        disk.inject_latent_error(100)
        done = disk.execute(DiskIO(IoKind.READ, 96, 8))
        with pytest.raises(LatentSectorError):
            sim.run_until_triggered(done)
        # A readahead hit would serve the bad sector from cache; the
        # failed read must not have recorded a segment.
        assert not disk._segments


class TestScrubRepair:
    def test_scrubber_repairs_latent_sector_and_completes(self):
        sim = Simulator()
        array = toy_array(sim)  # baseline AFRAID: scrubs when idle
        stride = array.layout.stripe_data_sectors
        done = array.submit(ArrayRequest(IoKind.WRITE, 0, 4))
        sim.run_until_triggered(done)
        assert array.marks.count == 1
        # Plant a media error inside the dirty stripe on a data disk the
        # scrubber must read.
        victim = array.layout.data_units(0)[0]
        array.disks[victim.disk].inject_latent_error(victim.disk_lba + 1)
        sim.run(until=sim.now + 5.0)  # idle: the scrubber kicks in
        assert array.marks.count == 0
        assert array.latent_sectors_repaired == 1
        assert array.disks[victim.disk].latent_error_count == 0

    def test_repair_counter_stays_zero_without_errors(self):
        sim = Simulator()
        array = toy_array(sim)
        done = array.submit(ArrayRequest(IoKind.WRITE, 0, 4))
        sim.run_until_triggered(done)
        sim.run(until=sim.now + 5.0)
        assert array.latent_sectors_repaired == 0

    def test_client_read_surfaces_media_error(self):
        sim = Simulator()
        array = toy_array(sim, policy=NeverScrubPolicy())
        unit = array.layout.data_units(0)[0]
        array.disks[unit.disk].inject_latent_error(unit.disk_lba)
        logical = array.layout.logical_sector_of_unit(0, unit.unit_index)
        done = array.submit(ArrayRequest(IoKind.READ, logical, 1))
        with pytest.raises(LatentSectorError):
            sim.run_until_triggered(done)
