"""Tests for the seek-time model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import SeekModel, c3325_geometry, c3325_seek_model


class TestFit:
    def test_anchor_points(self):
        model = SeekModel.fit(0.002, 0.009, 0.018, cylinders=4000)
        assert model.seek_time(0) == 0.0
        assert model.seek_time(1) == pytest.approx(0.002, rel=1e-6)
        third = (4000 - 1) // 3
        assert model.seek_time(third) == pytest.approx(0.009, rel=0.02)
        assert model.seek_time(3999) == pytest.approx(0.018, rel=1e-6)

    def test_requires_ordered_anchors(self):
        with pytest.raises(ValueError):
            SeekModel.fit(0.010, 0.009, 0.018, cylinders=4000)

    def test_requires_realistic_cylinder_count(self):
        with pytest.raises(ValueError):
            SeekModel.fit(0.002, 0.009, 0.018, cylinders=4)

    def test_negative_distance_rejected(self):
        model = SeekModel.fit(0.002, 0.009, 0.018, cylinders=4000)
        with pytest.raises(ValueError):
            model.seek_time(-1)


class TestShape:
    @given(d=st.integers(min_value=1, max_value=4015))
    @settings(max_examples=200, deadline=None)
    def test_monotone_nondecreasing(self, d):
        model = c3325_seek_model()
        assert model.seek_time(d) <= model.seek_time(d + 1) + 1e-12

    @given(d=st.integers(min_value=0, max_value=4015))
    @settings(max_examples=200, deadline=None)
    def test_nonnegative_and_bounded(self, d):
        model = c3325_seek_model()
        t = model.seek_time(d)
        assert 0.0 <= t <= 0.030  # nothing takes more than 30 ms

    def test_short_seeks_are_concave(self):
        """sqrt branch: marginal cost of extra distance shrinks."""
        model = c3325_seek_model()
        deltas = [model.seek_time(d + 1) - model.seek_time(d) for d in range(1, 50)]
        assert all(later <= earlier + 1e-12 for earlier, later in zip(deltas, deltas[1:]))


class TestCalibration:
    def test_mean_seek_near_datasheet_average(self):
        """Uniform-random seeks should average near the quoted 9.5 ms."""
        geometry = c3325_geometry()
        model = c3325_seek_model()
        mean = model.mean_seek_time(geometry.cylinders)
        assert 0.006 < mean < 0.012
