"""Tests for eqs. (1)-(5) and the combination rules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability import (
    TABLE_1,
    afraid_mdlr,
    afraid_mttdl,
    afraid_mttdl_raid_component,
    afraid_mttdl_unprotected,
    combine_mttdl,
    mdlr_raid_catastrophic,
    mdlr_unprotected,
    raid0_mttdl,
    raid5_mttdl_catastrophic,
)


class TestEquation1:
    def test_validation(self):
        with pytest.raises(ValueError):
            raid5_mttdl_catastrophic(1, 1e6, 48)
        with pytest.raises(ValueError):
            raid5_mttdl_catastrophic(5, -1, 48)

    def test_formula(self):
        # 5 disks: N=4. MTTF²/(4*5*48)
        assert raid5_mttdl_catastrophic(5, 1e6, 48.0) == pytest.approx(1e12 / 960)

    def test_improves_quadratically_with_mttf(self):
        assert raid5_mttdl_catastrophic(5, 2e6, 48.0) == pytest.approx(
            4 * raid5_mttdl_catastrophic(5, 1e6, 48.0)
        )

    def test_more_disks_lower_mttdl(self):
        assert raid5_mttdl_catastrophic(12, 1e6, 48.0) < raid5_mttdl_catastrophic(5, 1e6, 48.0)


class TestEquation2:
    def test_never_unprotected_is_infinite(self):
        assert afraid_mttdl_unprotected(5, 2e6, 0.0) == float("inf")

    def test_always_unprotected_equals_raid0(self):
        assert afraid_mttdl_unprotected(5, 2e6, 1.0) == pytest.approx(raid0_mttdl(5, 2e6))

    def test_2a_scales_inversely_with_exposure(self):
        tenth = afraid_mttdl_unprotected(5, 2e6, 0.1)
        fifth = afraid_mttdl_unprotected(5, 2e6, 0.2)
        assert tenth == pytest.approx(2 * fifth)

    def test_2b_never_unprotected_is_pure_raid(self):
        assert afraid_mttdl_raid_component(4e9, 0.0) == pytest.approx(4e9)

    def test_2b_always_unprotected_is_infinite(self):
        assert afraid_mttdl_raid_component(4e9, 1.0) == float("inf")

    def test_2c_between_raid0_and_raid5(self):
        mttf = TABLE_1.mttf_disk_h
        for fraction in (0.001, 0.01, 0.1, 0.5, 0.9):
            overall = afraid_mttdl(5, mttf, 48.0, fraction)
            assert raid0_mttdl(5, mttf) < overall < raid5_mttdl_catastrophic(5, mttf, 48.0)

    @given(fraction=st.floats(min_value=1e-6, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_2c_monotone_in_exposure(self, fraction):
        mttf = TABLE_1.mttf_disk_h
        smaller = afraid_mttdl(5, mttf, 48.0, fraction * 0.5)
        larger = afraid_mttdl(5, mttf, 48.0, fraction)
        assert larger <= smaller


class TestCombine:
    def test_single_value_identity(self):
        assert combine_mttdl(5e6) == pytest.approx(5e6)

    def test_harmonic_sum(self):
        assert combine_mttdl(2e6, 2e6) == pytest.approx(1e6)

    def test_infinite_drops_out(self):
        assert combine_mttdl(float("inf"), 3e6) == pytest.approx(3e6)

    def test_all_infinite(self):
        assert combine_mttdl(float("inf"), float("inf")) == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_mttdl()

    @given(values=st.lists(st.floats(min_value=1e3, max_value=1e9), min_size=2, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_combined_below_minimum(self, values):
        assert combine_mttdl(*values) <= min(values) + 1e-6


class TestMdlr:
    def test_eq3_formula(self):
        # 5 disks x 2 GB, MTTDL 4.0e9 h: 2*2e9*(4/5)/4e9 = 0.8 bytes/h
        assert mdlr_raid_catastrophic(5, 2 * 10**9, 4.0e9) == pytest.approx(0.8)

    def test_eq4_formula(self):
        # lag 1 MB, 5 disks, 2M h: (1e6/4)*(5/2e6) = 0.625 bytes/h
        assert mdlr_unprotected(5, 1e6, 2e6) == pytest.approx(0.625)

    def test_eq4_zero_lag_zero_rate(self):
        assert mdlr_unprotected(5, 0.0, 2e6) == 0.0

    def test_eq5_sums_components(self):
        params = TABLE_1
        total = afraid_mdlr(5, params.disk_bytes, params.mttf_disk_h, params.mttr_h, 1e6)
        raid = mdlr_raid_catastrophic(
            5,
            params.disk_bytes,
            raid5_mttdl_catastrophic(5, params.mttf_disk_h, params.mttr_h),
        )
        unprot = mdlr_unprotected(5, 1e6, params.mttf_disk_h)
        assert total == pytest.approx(raid + unprot)

    @given(lag=st.floats(min_value=0, max_value=1e9))
    @settings(max_examples=50, deadline=None)
    def test_eq5_monotone_in_lag(self, lag):
        params = TABLE_1
        base = afraid_mdlr(5, params.disk_bytes, params.mttf_disk_h, params.mttr_h, lag)
        more = afraid_mdlr(5, params.disk_bytes, params.mttf_disk_h, params.mttr_h, lag + 1.0)
        assert more >= base
