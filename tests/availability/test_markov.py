"""Tests for the Markov-chain MTTDL solver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability import TABLE_1, afraid_mttdl, raid5_mttdl_catastrophic
from repro.availability.markov import (
    AbsorbingChain,
    afraid_markov_mttdl,
    raid5_markov_mttdl,
    raid6_markov_mttdl,
)


class TestAbsorbingChain:
    def test_single_exponential(self):
        """One state, rate λ to absorption: expected time 1/λ."""
        chain = AbsorbingChain({(0, "loss"): 0.01}, absorbing="loss")
        assert chain.expected_time_to_absorption(0) == pytest.approx(100.0)

    def test_two_stage_series(self):
        """0 → 1 → loss at equal rates: expected time 2/λ."""
        chain = AbsorbingChain({(0, 1): 0.5, (1, "loss"): 0.5}, absorbing="loss")
        assert chain.expected_time_to_absorption(0) == pytest.approx(4.0)

    def test_repair_extends_lifetime(self):
        without = AbsorbingChain({(0, 1): 1.0, (1, "loss"): 1.0}, absorbing="loss")
        with_repair = AbsorbingChain(
            {(0, 1): 1.0, (1, 0): 10.0, (1, "loss"): 1.0}, absorbing="loss"
        )
        assert (
            with_repair.expected_time_to_absorption(0)
            > 5 * without.expected_time_to_absorption(0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            AbsorbingChain({}, absorbing="loss")
        with pytest.raises(ValueError):
            AbsorbingChain({(0, 1): -1.0}, absorbing="loss")
        with pytest.raises(ValueError):
            AbsorbingChain({("loss", 0): 1.0}, absorbing="loss")
        chain = AbsorbingChain({(0, "loss"): 1.0}, absorbing="loss")
        with pytest.raises(ValueError):
            chain.expected_time_to_absorption("nope")


class TestRaid5Chain:
    def test_matches_equation_1_when_repair_is_fast(self):
        """Eq. (1) is the λ≪μ limit: with MTTR 48 h and MTTF 2M h the
        exact answer agrees to ~0.01%."""
        exact = raid5_markov_mttdl(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h)
        approx = raid5_mttdl_catastrophic(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h)
        assert exact == pytest.approx(approx, rel=1e-3)

    def test_exact_exceeds_approximation(self):
        """The closed form slightly *underestimates* (it ignores the time
        already spent healthy in each cycle)."""
        exact = raid5_markov_mttdl(5, 1e6, 48.0)
        approx = raid5_mttdl_catastrophic(5, 2e6, 48.0)  # different inputs: just sanity
        assert exact > 0 and approx > 0

    @given(
        ndisks=st.integers(min_value=2, max_value=16),
        mttr=st.floats(min_value=1.0, max_value=500.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_agreement_scales(self, ndisks, mttr):
        exact = raid5_markov_mttdl(ndisks, 1e6, mttr)
        approx = raid5_mttdl_catastrophic(ndisks, 1e6, mttr)
        assert exact == pytest.approx(approx, rel=0.02)


class TestRaid6Chain:
    def test_vastly_exceeds_raid5(self):
        raid5 = raid5_markov_mttdl(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h)
        raid6 = raid6_markov_mttdl(6, TABLE_1.mttf_disk_h, TABLE_1.mttr_h)
        assert raid6 > 1e3 * raid5

    def test_closed_form_magnitude(self):
        """MTTDL_RAID6 ~ MTTF³ / (N(N+1)(N+2) MTTR²)."""
        ndisks, mttf, mttr = 6, 1e6, 48.0
        expected = mttf**3 / (ndisks * (ndisks - 1) * (ndisks - 2) * mttr**2)
        assert raid6_markov_mttdl(ndisks, mttf, mttr) == pytest.approx(expected, rel=0.05)


class TestAfraidChain:
    def test_zero_exposure_is_raid5(self):
        exact = afraid_markov_mttdl(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h, 0.0)
        assert exact == pytest.approx(
            raid5_markov_mttdl(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h), rel=1e-9
        )

    def test_full_exposure_is_raid0(self):
        assert afraid_markov_mttdl(5, 2e6, 48.0, 1.0) == pytest.approx(2e6 / 5)

    @given(fraction=st.floats(min_value=1e-4, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_matches_equation_2c_structure(self, fraction):
        """The chain and the paper's eq. (2c) agree closely across the
        whole exposure range (both are first-order in λ)."""
        chain = afraid_markov_mttdl(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h, fraction)
        paper = afraid_mttdl(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h, fraction)
        assert chain == pytest.approx(paper, rel=0.05)

    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_exposure(self, fraction):
        looser = afraid_markov_mttdl(5, 2e6, 48.0, min(1.0, fraction + 0.01))
        tighter = afraid_markov_mttdl(5, 2e6, 48.0, fraction)
        assert looser <= tighter * (1 + 1e-9)
