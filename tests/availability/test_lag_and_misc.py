"""Tests for the parity-lag tracker, lifetime math, support, NVRAM, power."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.availability import (
    NvramModel,
    ParityLagTracker,
    PowerModel,
    loss_probability,
    mttdl_from_loss_probability,
)
from repro.availability.support import SupportComponent, SupportModel, TYPICAL_COMPONENTS


class TestParityLagTracker:
    def test_starts_clean(self):
        tracker = ParityLagTracker()
        tracker.finish(10.0)
        assert tracker.mean_parity_lag_bytes == 0.0
        assert tracker.unprotected_fraction == 0.0
        assert tracker.total_time == 10.0

    def test_constant_lag(self):
        tracker = ParityLagTracker()
        tracker.record(0.0, 100.0)
        tracker.finish(10.0)
        assert tracker.mean_parity_lag_bytes == pytest.approx(100.0)
        assert tracker.unprotected_fraction == pytest.approx(1.0)

    def test_half_window_exposure(self):
        tracker = ParityLagTracker()
        tracker.record(0.0, 0.0)
        tracker.record(5.0, 200.0)
        tracker.finish(10.0)
        assert tracker.mean_parity_lag_bytes == pytest.approx(100.0)
        assert tracker.unprotected_fraction == pytest.approx(0.5)
        assert tracker.unprotected_time == pytest.approx(5.0)

    def test_peak_tracked(self):
        tracker = ParityLagTracker()
        tracker.record(0.0, 10.0)
        tracker.record(1.0, 500.0)
        tracker.record(2.0, 0.0)
        tracker.finish(10.0)
        assert tracker.peak_parity_lag_bytes == 500.0

    def test_time_cannot_go_backwards(self):
        tracker = ParityLagTracker()
        tracker.record(5.0, 1.0)
        with pytest.raises(ValueError):
            tracker.record(4.0, 2.0)

    def test_negative_lag_rejected(self):
        with pytest.raises(ValueError):
            ParityLagTracker().record(0.0, -1.0)

    def test_finish_is_terminal(self):
        tracker = ParityLagTracker()
        tracker.finish(1.0)
        with pytest.raises(RuntimeError):
            tracker.record(2.0, 1.0)
        with pytest.raises(RuntimeError):
            tracker.finish(2.0)

    def test_snapshot_does_not_mutate(self):
        tracker = ParityLagTracker()
        tracker.record(0.0, 100.0)
        fraction = tracker.snapshot_unprotected_fraction(10.0)
        assert fraction == pytest.approx(1.0)
        tracker.record(10.0, 0.0)
        tracker.finish(20.0)
        assert tracker.unprotected_fraction == pytest.approx(0.5)

    def test_nonzero_start_time(self):
        tracker = ParityLagTracker(start_time=100.0)
        tracker.record(100.0, 50.0)
        tracker.finish(110.0)
        assert tracker.total_time == pytest.approx(10.0)
        assert tracker.mean_parity_lag_bytes == pytest.approx(50.0)

    @given(
        changes=st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=10.0),  # dt
                st.floats(min_value=0.0, max_value=1e6),  # new lag
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_mean_lag_bounded_by_peak(self, changes):
        tracker = ParityLagTracker()
        time = 0.0
        for dt, lag in changes:
            time += dt
            tracker.record(time, lag)
        tracker.finish(time + 1.0)
        assert 0.0 <= tracker.mean_parity_lag_bytes <= tracker.peak_parity_lag_bytes + 1e-9
        assert 0.0 <= tracker.unprotected_fraction <= 1.0

    def test_identical_timestamps_last_value_wins(self):
        """Several records at the same instant contribute no time — only
        the last value carries forward into the next segment."""
        tracker = ParityLagTracker()
        tracker.record(1.0, 100.0)
        tracker.record(1.0, 300.0)
        tracker.record(1.0, 200.0)
        tracker.finish(2.0)
        # [0,1): lag 0; [1,2): lag 200 (the last same-instant record).
        assert tracker.mean_parity_lag_bytes == pytest.approx(100.0)
        assert tracker.unprotected_fraction == pytest.approx(0.5)
        assert tracker.peak_parity_lag_bytes == 300.0  # peaks still observed

    def test_zero_duration_run(self):
        tracker = ParityLagTracker()
        tracker.record(0.0, 100.0)
        tracker.finish(0.0)
        assert tracker.total_time == 0.0
        assert tracker.mean_parity_lag_bytes == 0.0
        assert tracker.unprotected_fraction == 0.0

    def test_snapshot_after_finish_is_frozen(self):
        """Polling past the horizon must not extend the closed window."""
        tracker = ParityLagTracker()
        tracker.record(0.0, 100.0)  # unprotected the whole run
        tracker.finish(10.0)
        final = tracker.unprotected_fraction
        assert final == pytest.approx(1.0)
        assert tracker.snapshot_unprotected_fraction(10.0) == pytest.approx(final)
        assert tracker.snapshot_unprotected_fraction(1000.0) == pytest.approx(final)

    def test_snapshot_at_finish_instant_matches_final(self):
        tracker = ParityLagTracker()
        tracker.record(0.0, 50.0)
        tracker.record(4.0, 0.0)
        tracker.finish(8.0)
        assert tracker.snapshot_unprotected_fraction(8.0) == pytest.approx(
            tracker.unprotected_fraction
        )


class TestWindowedIntegralsPartition:
    """The exposure estimator's clipped integrals partition the run."""

    @given(
        changes=st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=5.0),  # dt
                st.floats(min_value=0.0, max_value=1e6),  # new lag
            ),
            min_size=1,
            max_size=25,
        ),
        nwindows=st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=100, deadline=None)
    def test_window_integrals_sum_to_whole_run(self, changes, nwindows):
        from repro.obs.exposure import lag_integral, unprotected_time

        tracker = ParityLagTracker()
        transitions = [(0.0, 0.0)]
        time = 0.0
        for dt, lag in changes:
            time += dt
            tracker.record(time, lag)
            transitions.append((time, lag))
        horizon = time + 1.0
        tracker.finish(horizon)

        edges = [horizon * i / nwindows for i in range(nwindows + 1)]
        split_integral = sum(
            lag_integral(transitions, a, b) for a, b in zip(edges, edges[1:])
        )
        split_unprot = sum(
            unprotected_time(transitions, a, b) for a, b in zip(edges, edges[1:])
        )
        whole = tracker.mean_parity_lag_bytes * tracker.total_time
        assert split_integral == pytest.approx(whole, rel=1e-9, abs=1e-6)
        assert split_unprot == pytest.approx(tracker.unprotected_time, rel=1e-9, abs=1e-9)


class TestLifetime:
    def test_probability_monotone_in_lifetime(self):
        assert loss_probability(1e6, 1000) < loss_probability(1e6, 10_000)

    def test_infinite_mttdl_never_loses(self):
        assert loss_probability(float("inf"), 1e9) == 0.0

    def test_inverse_roundtrip(self):
        mttdl = mttdl_from_loss_probability(0.026, 26_298)
        assert loss_probability(mttdl, 26_298) == pytest.approx(0.026, rel=1e-9)

    @given(
        mttdl=st.floats(min_value=1e3, max_value=1e12),
        lifetime=st.floats(min_value=1.0, max_value=1e6),
    )
    @settings(max_examples=100, deadline=None)
    def test_probability_in_unit_interval(self, mttdl, lifetime):
        assert 0.0 <= loss_probability(mttdl, lifetime) <= 1.0


class TestSupportModel:
    def test_lumped_or_itemised_exclusive(self):
        with pytest.raises(ValueError):
            SupportModel()
        with pytest.raises(ValueError):
            SupportModel(components=[], mttdl_h=1e6)

    def test_component_mttdl_scales_with_loss_fraction(self):
        component = SupportComponent("psu", mttf_h=100e3, data_loss_fraction=0.1)
        assert component.mttdl_h == pytest.approx(1e6)

    def test_itemised_model_combines(self):
        model = SupportModel(
            components=[
                SupportComponent("a", mttf_h=2e6),
                SupportComponent("b", mttf_h=2e6),
            ]
        )
        assert model.mttdl_h == pytest.approx(1e6)

    def test_typical_components_are_support_limited(self):
        """The itemised example lands in the 'hundreds of k to a few M
        hours' band §3.3 quotes for real products."""
        assert 2e5 < TYPICAL_COMPONENTS.mttdl_h < 5e6


class TestNvramAndPower:
    def test_nvram_validation(self):
        with pytest.raises(ValueError):
            NvramModel("bad", mttf_h=0, vulnerable_bytes=1)

    def test_power_validation(self):
        with pytest.raises(ValueError):
            PowerModel("bad", mttf_power_h=100, write_duty_cycle=0.0)

    def test_write_duty_cycle_scales_mttdl(self):
        light = PowerModel("light", mttf_power_h=4300, write_duty_cycle=0.05)
        heavy = PowerModel("heavy", mttf_power_h=4300, write_duty_cycle=0.59)
        assert light.mttdl_h > heavy.mttdl_h
