"""Tests for the organization-generic availability models."""

import pytest

from repro.availability import (
    TABLE_1,
    afraid_mdlr,
    afraid_mttdl,
    declustered_mttdl,
    declustered_rebuild_speedup,
    mirror_mttdl,
    mirror_mttdl_catastrophic,
    organization_mdlr,
    organization_mttdl,
    raid5_mttdl_catastrophic,
    raid15_mttdl,
    raid15_mttdl_catastrophic,
)

MTTF = TABLE_1.mttf_disk_h
MTTR = TABLE_1.mttr_h
DISK_BYTES = 2 * 10**9


class TestDispatch:
    def test_raid5_delegates_exactly(self):
        for fraction in (0.0, 0.25, 1.0):
            assert organization_mttdl("raid5", 5, MTTF, MTTR, fraction) == afraid_mttdl(
                5, MTTF, MTTR, fraction
            )
        assert organization_mdlr(
            "raid5", 5, DISK_BYTES, MTTF, MTTR, 1e6
        ) == afraid_mdlr(5, DISK_BYTES, MTTF, MTTR, 1e6)

    @pytest.mark.parametrize("name", ["raid5", "raid5d", "raid1", "raid10", "raid15"])
    def test_every_organization_dispatches(self, name):
        ndisks = {"raid1": 2}.get(name, 6)
        mttdl = organization_mttdl(name, ndisks, MTTF, MTTR, 0.1)
        mdlr = organization_mdlr(name, ndisks, DISK_BYTES, MTTF, MTTR, 1e6)
        assert mttdl > 0 and mdlr > 0

    def test_unknown_organization(self):
        with pytest.raises(ValueError, match="unknown organization"):
            organization_mttdl("raid9", 5, MTTF, MTTR, 0.0)
        with pytest.raises(ValueError, match="unknown organization"):
            organization_mdlr("raid9", 5, DISK_BYTES, MTTF, MTTR, 0.0)


class TestMirrorModels:
    def test_catastrophic_matches_thomasian_form(self):
        # MTTDL = MTTF^2 / (2 * npairs * MTTR)
        assert mirror_mttdl_catastrophic(6, MTTF, MTTR) == pytest.approx(
            MTTF**2 / (2 * 3 * MTTR)
        )

    def test_zero_fraction_is_catastrophic_only(self):
        assert mirror_mttdl(6, MTTF, MTTR, 0.0) == pytest.approx(
            mirror_mttdl_catastrophic(6, MTTF, MTTR)
        )

    def test_exposure_degrades_mttdl(self):
        clean = mirror_mttdl(6, MTTF, MTTR, 0.0)
        dirty = mirror_mttdl(6, MTTF, MTTR, 0.5)
        assert dirty < clean

    def test_odd_disk_count_rejected(self):
        with pytest.raises(ValueError, match="even"):
            mirror_mttdl(5, MTTF, MTTR, 0.1)


class TestRaid15Models:
    def test_catastrophe_needs_two_pair_deaths(self):
        # Far rarer than a single mirrored pair death.
        assert raid15_mttdl_catastrophic(6, MTTF, MTTR) > mirror_mttdl_catastrophic(
            6, MTTF, MTTR
        )

    def test_deferral_hurts_less_than_plain_mirror(self):
        # RAID 1+5 keeps dirty data mirrored; only a pair death during
        # the window loses it, so the same fraction costs far less MTTDL.
        assert raid15_mttdl(6, MTTF, MTTR, 0.3) > mirror_mttdl(6, MTTF, MTTR, 0.3)


class TestDeclusteredModels:
    def test_speedup_shrinks_repair_window(self):
        assert declustered_rebuild_speedup(6, 4) == pytest.approx(3 / 5)
        assert declustered_mttdl(6, MTTF, MTTR, 0.0, stripe_width=4) > afraid_mttdl(
            6, MTTF, MTTR, 0.0
        )

    def test_default_width_is_n_minus_one(self):
        explicit = declustered_mttdl(6, MTTF, MTTR, 0.1, stripe_width=5)
        assert declustered_mttdl(6, MTTF, MTTR, 0.1) == pytest.approx(explicit)

    def test_catastrophic_only_beats_raid5_by_speedup(self):
        raid5 = raid5_mttdl_catastrophic(6, MTTF, MTTR)
        speedup = declustered_rebuild_speedup(6, 4)
        assert declustered_mttdl(6, MTTF, MTTR, 0.0, stripe_width=4) == pytest.approx(
            raid5 / speedup
        )
