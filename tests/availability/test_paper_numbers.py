"""Cross-checks against the numbers the paper itself reports in Section 3.

Each test quotes the paper's figure and verifies our implementation
reproduces it from the Table 1 constants.
"""

import pytest

from repro.availability import (
    MAINS_ONLY,
    PRESTOSERVE,
    TABLE_1,
    WITH_UPS,
    loss_probability,
    mdlr_raid_catastrophic,
    raid5_mttdl_catastrophic,
)
from repro.availability.lifetime import loss_probability_years
from repro.availability.models import single_disk_mdlr
from repro.availability.support import CONSERVATIVE_SUPPORT, GIBSON_SUPPORT


class TestSection31:
    def test_5_disk_raid5_mttdl_is_4e9_hours(self):
        """'With a 5-disk array ... a theoretical MTTDL of ~4.10^9 hours'."""
        mttdl = raid5_mttdl_catastrophic(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h)
        assert mttdl == pytest.approx(4.17e9, rel=0.05)

    def test_which_is_about_475k_years(self):
        mttdl = raid5_mttdl_catastrophic(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h)
        years = mttdl / (24 * 365.25)
        assert years == pytest.approx(475_000, rel=0.05)

    def test_coverage_factor_doubles_mttf(self):
        """MTTFdisk = MTTFdisk-raw / (1 - C) with C = 0.5."""
        assert TABLE_1.mttf_disk_h == pytest.approx(2.0e6)


class TestSection32:
    def test_raid5_catastrophic_mdlr_08_bytes_per_hour(self):
        """'The RAID 5 array we considered earlier would have a MDLR of
        ~0.8 bytes/hour from this failure mode.'"""
        mttdl = raid5_mttdl_catastrophic(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h)
        mdlr = mdlr_raid_catastrophic(5, TABLE_1.disk_bytes, mttdl)
        assert mdlr == pytest.approx(0.8, rel=0.05)


class TestSection33:
    def test_support_2m_hours_gives_4kb_per_hour(self):
        """'With a 2M hour MTTDL, our 5-disk array would suffer a MDLR of
        4.0KB/hour.'"""
        assert CONSERVATIVE_SUPPORT.mdlr(5, TABLE_1.disk_bytes) == pytest.approx(4000, rel=0.01)

    def test_gibson_150k_hours_gives_53kb_per_hour(self):
        """'using the 150k hour figure from [Gibson93] would increase this
        to 53KB/hour.'"""
        assert GIBSON_SUPPORT.mdlr(5, TABLE_1.disk_bytes) == pytest.approx(53_333, rel=0.01)


class TestSection34:
    def test_prestoserve_mdlr_67_bytes_per_hour(self):
        """'the popular PrestoServe card has a predicted MTTF of 15k hours;
        with 1MB of vulnerable data, this corresponds to an MDLR of 67
        bytes/hour.'"""
        assert PRESTOSERVE.mdlr == pytest.approx(66.7, rel=0.01)


class TestSection35:
    def test_mains_power_43k_hours(self):
        """'a 10% write duty cycle on a 5-disk RAID 5 gives a MTTDL of only
        43k hours due to external power failures.'"""
        assert MAINS_ONLY.mttdl_h == pytest.approx(43_000, rel=0.01)

    def test_ups_restores_2m_hours(self):
        """'a high-grade ups with an MTTF of 200k hours and a 10% write duty
        cycle returns the MTTDL ... to 2M hours.'"""
        assert WITH_UPS.mttdl_h == pytest.approx(2.0e6, rel=0.01)


class TestSection36AndIntro:
    def test_1m_hours_is_2_6_percent_over_3_years(self):
        """'An aggregate MTTDL of a million hours (114 years) translates
        into only a 2.6% likelihood of any data loss at all during a
        typical 3-year array lifetime.'"""
        assert loss_probability_years(1.0e6, years=3.0) == pytest.approx(0.026, abs=0.002)

    def test_1m_hours_is_114_years(self):
        assert 1.0e6 / (24 * 365.25) == pytest.approx(114, rel=0.01)

    def test_modern_disk_lifetime_failure_3_to_5_percent(self):
        """'a lifetime expected failure likelihood of 3-5%' for 0.5-1M hour
        disks over ~26k hours."""
        assert 0.025 < loss_probability(1.0e6, 26_000) < 0.05
        assert 0.03 < loss_probability(0.5e6, 26_000) < 0.06

    def test_single_disk_mdlr_2_to_4_kb_per_hour(self):
        """'If it held 2GB, its mean data loss rate would be 2-4KB/hour.'"""
        assert single_disk_mdlr(TABLE_1.disk_bytes, 1.0e6) == pytest.approx(2000, rel=0.01)
        assert single_disk_mdlr(TABLE_1.disk_bytes, 0.5e6) == pytest.approx(4000, rel=0.01)


class TestTable1Rows:
    def test_rows_render(self):
        rows = TABLE_1.rows()
        assert len(rows) == 6
        rendered = dict(rows)
        assert rendered["disk mean time to failure MTTFdisk-raw"] == "1M hours"
        assert rendered["stripe unit size (S)"] == "8KB"
        assert rendered["size of disk (Vdisk)"] == "2GB"
