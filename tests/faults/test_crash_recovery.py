"""Crash/power-loss recovery: NVRAM marks survive, §3.1 scan drains them."""

import pytest

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind
from repro.faults import InvariantChecker
from repro.policy import BaselineAfraidPolicy
from repro.sim import Simulator


def write(offset, nsectors):
    return ArrayRequest(IoKind.WRITE, offset, nsectors)


class TestMarkSnapshot:
    def test_snapshot_round_trips(self):
        sim = Simulator()
        array = toy_array(sim)
        for stripe in range(3):
            sim.run_until_triggered(
                array.submit(write(stripe * array.layout.stripe_data_sectors, 4))
            )
        snap = array.marks.snapshot()
        assert len(snap) == array.marks.count == 3

        sim2 = Simulator(start_time=sim.now)
        array2 = toy_array(sim2, with_functional=False)
        array2.marks.restore(snap)
        assert array2.marks.count == 3
        assert array2.marks.snapshot() == snap

    def test_snapshot_of_failed_memory_raises(self):
        sim = Simulator()
        array = toy_array(sim)
        array.marks.fail()
        with pytest.raises(Exception):
            array.marks.snapshot()


class TestCrashRecovery:
    def test_restart_recovery_scan_drains_surviving_marks(self):
        """Simulated power loss: marks persist, a §3.1 recovery scan on
        the restarted array scrubs them all without new traffic."""
        sim = Simulator()
        array = toy_array(sim)
        for stripe in range(4):
            sim.run_until_triggered(
                array.submit(write(stripe * array.layout.stripe_data_sectors, 4))
            )
        crash_time = sim.now
        snap = array.marks.snapshot()
        twin = array.functional  # platters survive the crash
        assert array.marks.count == 4

        # Restart: fresh simulator and controller at the crash time, same
        # twin, restored marks.
        sim2 = Simulator(start_time=crash_time)
        array2 = toy_array(sim2, policy=BaselineAfraidPolicy(), with_functional=False)
        array2.functional = twin
        array2.marks.restore(snap)
        checker = InvariantChecker(array2)
        checker.check_marks_cover_twin()
        array2.recovery_scan()
        sim2.run(until=crash_time + 5.0)
        assert array2.marks.count == 0
        checker.check_recovery_complete()
        assert checker.check_parity_audit()
        assert checker.ok, [r.as_payload() for r in checker.violations]

    def test_recovery_scan_is_noop_when_clean(self):
        sim = Simulator()
        array = toy_array(sim)
        array.recovery_scan()
        sim.run(until=1.0)
        assert array.marks.count == 0

    def test_twin_dirt_matches_marks_after_restore(self):
        sim = Simulator()
        array = toy_array(sim)
        sim.run_until_triggered(array.submit(write(0, 4)))
        snap = array.marks.snapshot()
        twin = array.functional

        sim2 = Simulator(start_time=sim.now)
        array2 = toy_array(sim2, with_functional=False)
        array2.functional = twin
        array2.marks.restore(snap)
        checker = InvariantChecker(array2)
        checker.check_marks_cover_twin()
        assert checker.ok
