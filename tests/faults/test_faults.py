"""Tests for fault injection against the functional twin."""

import pytest

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind
from repro.faults import FaultInjector, predicted_loss_bytes
from repro.nvram import MarkMemoryFailedError
from repro.policy import AlwaysRaid5Policy, NeverScrubPolicy
from repro.sim import Simulator


def write(offset, nsectors):
    return ArrayRequest(IoKind.WRITE, offset, nsectors)


class TestDiskFailure:
    def test_failure_with_clean_array_loses_nothing(self):
        sim = Simulator()
        array = toy_array(sim, policy=AlwaysRaid5Policy())
        injector = FaultInjector(sim, array)
        done = array.submit(write(0, 8))
        sim.run_until_triggered(done)
        injector.fail_disk_at(disk=1, at_time=sim.now + 1.0)
        sim.run(until=sim.now + 2.0)
        report = injector.reports[0]
        assert report.dirty_stripes_at_failure == 0
        assert report.lost_data_bytes == 0
        assert not report.any_loss

    def test_failure_with_dirty_stripes_loses_units(self):
        sim = Simulator()
        array = toy_array(sim, policy=NeverScrubPolicy())  # exposure never drains
        injector = FaultInjector(sim, array)
        stride = array.layout.stripe_data_sectors
        for stripe in range(4):
            done = array.submit(write(stripe * stride, 4))
            sim.run_until_triggered(done)
        predicted = predicted_loss_bytes(array, failed_disk=0)
        injector.fail_disk_at(disk=0, at_time=sim.now + 0.5)
        sim.run(until=sim.now + 1.0)
        report = injector.reports[0]
        assert report.dirty_stripes_at_failure == 4
        assert report.lost_data_bytes == predicted
        assert report.any_loss
        # At most one unit per dirty stripe, and not every stripe has its
        # parity on disk 0, so loss is in (0, 4] units.
        assert 0 < report.lost_data_bytes <= 4 * array.unit_bytes

    def test_parity_disk_failure_loses_nothing(self):
        sim = Simulator()
        array = toy_array(sim, policy=NeverScrubPolicy())
        done = array.submit(write(0, 4))  # dirties stripe 0
        sim.run_until_triggered(done)
        parity_disk = array.layout.parity_disk(0)
        injector = FaultInjector(sim, array)
        injector.fail_disk_at(disk=parity_disk, at_time=sim.now + 0.5)
        sim.run(until=sim.now + 1.0)
        assert injector.reports[0].lost_data_bytes == 0

    def test_scrub_before_failure_prevents_loss(self):
        sim = Simulator()
        array = toy_array(sim, idle_threshold_s=0.05)  # baseline AFRAID
        done = array.submit(write(0, 4))
        sim.run_until_triggered(done)
        injector = FaultInjector(sim, array)
        injector.fail_disk_at(disk=0, at_time=sim.now + 5.0)  # plenty of idle time
        sim.run(until=sim.now + 6.0)
        report = injector.reports[0]
        assert report.dirty_stripes_at_failure == 0
        assert report.lost_data_bytes == 0

    def test_validation(self):
        sim = Simulator()
        array = toy_array(sim)
        injector = FaultInjector(sim, array)
        with pytest.raises(ValueError):
            injector.fail_disk_at(disk=99, at_time=1.0)
        sim.run(until=10.0)
        with pytest.raises(ValueError):
            injector.fail_disk_at(disk=0, at_time=5.0)


class TestMarkMemoryFailure:
    def test_failure_triggers_whole_array_rebuild(self):
        sim = Simulator()
        array = toy_array(sim, ndisks=3, stripe_unit_sectors=4, with_functional=False)
        injector = FaultInjector(sim, array)
        injector.fail_mark_memory_at(at_time=1.0)
        sim.run(until=1.0 + 1e-6)
        assert array.dirty_stripe_count == array.layout.nstripes
        sim.run(until=120.0)
        assert array.dirty_stripe_count == 0
        assert array.stats.stripes_scrubbed == array.layout.nstripes

    def test_without_auto_recover_marks_stay_dead(self):
        """``auto_recover=False`` models an NVRAM loss nobody repairs:
        every subsequent marking-memory access raises."""
        sim = Simulator()
        array = toy_array(sim, ndisks=3, stripe_unit_sectors=4, with_functional=False)
        injector = FaultInjector(sim, array)
        injector.fail_mark_memory_at(at_time=1.0, auto_recover=False)
        sim.run(until=1.0 + 1e-6)
        assert array.marks.failed
        with pytest.raises(MarkMemoryFailedError):
            array.marks.mark(0)
        with pytest.raises(MarkMemoryFailedError):
            array.marks.count()

    def test_write_during_dead_mark_memory_fails_the_request(self):
        sim = Simulator()
        array = toy_array(sim, ndisks=3, stripe_unit_sectors=4, with_functional=False)
        injector = FaultInjector(sim, array)
        injector.fail_mark_memory_at(at_time=1.0, auto_recover=False)
        sim.run(until=1.0 + 1e-6)
        done = array.submit(write(0, 4))
        with pytest.raises(MarkMemoryFailedError):
            sim.run_until_triggered(done)

    def test_recover_restores_service(self):
        sim = Simulator()
        array = toy_array(sim, ndisks=3, stripe_unit_sectors=4, with_functional=False)
        injector = FaultInjector(sim, array)
        injector.fail_mark_memory_at(at_time=1.0, auto_recover=False)
        sim.run(until=1.0 + 1e-6)
        array.recover_mark_memory()
        assert not array.marks.failed
        sim.run_until_triggered(array.submit(write(0, 4)))

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        array = toy_array(sim, ndisks=3, stripe_unit_sectors=4, with_functional=False)
        injector = FaultInjector(sim, array)
        sim.run(until=2.0)
        with pytest.raises(ValueError):
            injector.fail_mark_memory_at(at_time=1.0)
