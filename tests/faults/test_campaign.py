"""The deterministic fault-campaign engine."""

import json

import pytest

from repro.faults import CampaignSpec, run_campaign
from repro.harness import run_campaign_suite, write_campaign_reports


class TestSpec:
    def test_round_trips_through_dict(self):
        spec = CampaignSpec(disk_failures=2.0, crash_points=(1.5,), bits_per_stripe=2)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_round_trips_through_json(self, tmp_path):
        spec = CampaignSpec(policy="raid0", latent_errors=1.0)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert CampaignSpec.from_file(path) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign spec keys"):
            CampaignSpec.from_dict({"workload": "snake", "disc_failures": 1.0})

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            CampaignSpec(policy="raid6")

    def test_crash_points_must_be_inside_run(self):
        with pytest.raises(ValueError, match="crash_points"):
            CampaignSpec(duration_s=5.0, crash_points=(5.0,))


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        spec = CampaignSpec(disk_failures=1.0, nvram_losses=0.5, latent_errors=1.0)
        first = run_campaign(spec, 11)
        second = run_campaign(spec, 11)
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self):
        spec = CampaignSpec(disk_failures=1.0)
        assert run_campaign(spec, 0).to_json() != run_campaign(spec, 1).to_json()

    def test_crash_segmentation_is_deterministic(self):
        spec = CampaignSpec(disk_failures=1.0, crash_points=(2.0, 4.0))
        first = run_campaign(spec, 5)
        second = run_campaign(spec, 5)
        assert first.to_json() == second.to_json()
        assert first.payload["summary"]["segments"] == 3


class TestInvariants:
    def test_smoke_campaign_passes_invariants(self):
        spec = CampaignSpec(disk_failures=1.0, nvram_losses=0.5, latent_errors=1.0)
        for seed in range(5):
            report = run_campaign(spec, seed)
            assert report.ok, (seed, report.violations)

    def test_sub_unit_campaign_prediction_is_exact(self):
        spec = CampaignSpec(disk_failures=1.0, bits_per_stripe=4, policy="raid0")
        saw_loss = False
        for seed in range(5):
            report = run_campaign(spec, seed)
            assert report.ok, (seed, report.violations)
            summary = report.payload["summary"]
            # raid0 never scrubs and never goes conservative: equality.
            assert summary["predicted_loss_bytes"] == summary["actual_loss_bytes"]
            saw_loss = saw_loss or summary["actual_loss_bytes"] > 0
        assert saw_loss  # the campaign exercised a real loss at least once

    def test_raid5_campaign_loses_nothing(self):
        spec = CampaignSpec(policy="raid5", disk_failures=1.0)
        for seed in range(3):
            report = run_campaign(spec, seed)
            assert report.ok
            assert report.payload["summary"]["actual_loss_bytes"] == 0


class TestCrashSegments:
    def test_crash_produces_restart_event_and_recovers(self):
        spec = CampaignSpec(disk_failures=0.0, crash_points=(2.0,))
        report = run_campaign(spec, 3)
        kinds = [event["kind"] for event in report.payload["events"]]
        assert "crash" in kinds and "restart" in kinds
        assert report.ok
        assert report.payload["summary"]["final_marks"] == 0

    def test_failure_spanning_crash_still_repairs(self):
        # Failure before the crash, repair delayed past it: the restarted
        # segment must re-schedule the repair and end whole.
        spec = CampaignSpec(disk_failures=1.0, crash_points=(3.0,), repair_delay_s=2.5)
        report = run_campaign(spec, 7)
        assert report.ok
        summary = report.payload["summary"]
        if summary["disk_failures"]:
            assert summary["final_degraded_disk"] is None
            assert summary["spares_used"] == 1


class TestSuiteRunner:
    def test_suite_collects_all_seeds(self):
        spec = CampaignSpec(disk_failures=1.0)
        outcome = run_campaign_suite(spec, [0, 1, 2])
        assert [report.seed for report in outcome.reports] == [0, 1, 2]
        assert outcome.ok
        assert outcome.summary_payload()["totals"]["disk_failures"] >= 1

    def test_written_reports_are_byte_stable(self, tmp_path):
        spec = CampaignSpec(disk_failures=1.0, latent_errors=1.0)
        first_dir, second_dir = tmp_path / "a", tmp_path / "b"
        write_campaign_reports(run_campaign_suite(spec, [0, 1]), first_dir)
        write_campaign_reports(run_campaign_suite(spec, [0, 1]), second_dir)
        for path in sorted(first_dir.iterdir()):
            assert path.read_bytes() == (second_dir / path.name).read_bytes()

    def test_report_files_parse_and_match_reports(self, tmp_path):
        spec = CampaignSpec()
        outcome = run_campaign_suite(spec, [4])
        paths = write_campaign_reports(outcome, tmp_path)
        seed_file = tmp_path / "seed-004.json"
        assert seed_file in paths
        assert json.loads(seed_file.read_text()) == outcome.reports[0].payload
