"""Degraded-mode fault handling: the injector must actually degrade the
array, second strikes are no-ops, and degraded traffic is classified."""

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind, toy_disk
from repro.ext.rebuild import RebuildManager
from repro.faults import FaultInjector, predicted_loss_bytes
from repro.obs import HistogramSet
from repro.policy import AlwaysRaid5Policy, NeverScrubPolicy
from repro.sim import Simulator


def write(offset, nsectors):
    return ArrayRequest(IoKind.WRITE, offset, nsectors)


def read(offset, nsectors):
    return ArrayRequest(IoKind.READ, offset, nsectors)


class TestInjectorEntersDegraded:
    def test_fail_disk_at_enters_degraded_mode(self):
        sim = Simulator()
        array = toy_array(sim, policy=AlwaysRaid5Policy())
        injector = FaultInjector(sim, array)
        injector.fail_disk_at(disk=2, at_time=1.0)
        sim.run(until=2.0)
        assert array.degraded_disk == 2

    def test_traffic_survives_across_injected_failure(self):
        """Regression: reads after the strike must reconstruct through
        parity instead of dying on the failed member."""
        sim = Simulator()
        array = toy_array(sim, policy=AlwaysRaid5Policy())
        injector = FaultInjector(sim, array)
        # Lay down data everywhere first.
        for stripe in range(4):
            offset = stripe * array.layout.stripe_data_sectors
            request = write(offset, array.layout.stripe_data_sectors)
            sim.run_until_triggered(array.submit(request))
        injector.fail_disk_at(disk=1, at_time=sim.now + 0.5)
        sim.run(until=sim.now + 1.0)
        assert array.degraded_disk == 1
        # Every sector is still readable, including those on the dead disk.
        for stripe in range(4):
            offset = stripe * array.layout.stripe_data_sectors
            request = read(offset, array.layout.stripe_data_sectors)
            done = array.submit(request)
            sim.run_until_triggered(done)
            assert request.complete_time is not None

    def test_degraded_writes_complete(self):
        sim = Simulator()
        array = toy_array(sim, policy=AlwaysRaid5Policy())
        injector = FaultInjector(sim, array)
        injector.fail_disk_at(disk=0, at_time=0.5)
        sim.run(until=1.0)
        done = array.submit(write(0, 8))
        sim.run_until_triggered(done)


class TestSecondStrikeIsNoOp:
    def test_striking_failed_disk_again_is_skipped(self):
        sim = Simulator()
        array = toy_array(sim)
        injector = FaultInjector(sim, array)
        injector.fail_disk_at(disk=1, at_time=1.0)
        injector.fail_disk_at(disk=1, at_time=2.0)
        sim.run(until=3.0)
        assert len(injector.reports) == 1
        assert len(injector.skipped) == 1
        assert injector.skipped[0].disk == 1
        assert "failed" in injector.skipped[0].reason

    def test_striking_other_disk_while_degraded_is_skipped(self):
        sim = Simulator()
        array = toy_array(sim)
        injector = FaultInjector(sim, array)
        injector.fail_disk_at(disk=1, at_time=1.0)
        injector.fail_disk_at(disk=3, at_time=2.0)
        sim.run(until=3.0)
        assert len(injector.reports) == 1
        assert injector.reports[0].disk == 1
        assert len(injector.skipped) == 1
        assert "degraded" in injector.skipped[0].reason
        # The second target was never actually killed.
        assert not array.disks[3].failed


class TestDegradedRequestClasses:
    def test_degraded_classes_appear_during_failure_window(self):
        sim = Simulator()
        array = toy_array(sim, policy=AlwaysRaid5Policy())
        hists = HistogramSet()
        array.attach_observability(histograms=hists)
        injector = FaultInjector(sim, array)
        sim.run_until_triggered(array.submit(write(0, 8)))
        sim.run_until_triggered(array.submit(read(0, 8)))
        assert hists.get("client_write").count == 1
        assert hists.get("client_read").count == 1
        assert hists.get("degraded_read").count == 0
        assert hists.get("degraded_write").count == 0
        injector.fail_disk_at(disk=1, at_time=sim.now + 0.5)
        sim.run(until=sim.now + 1.0)
        sim.run_until_triggered(array.submit(write(0, 8)))
        sim.run_until_triggered(array.submit(read(0, 8)))
        assert hists.get("degraded_write").count == 1
        assert hists.get("degraded_read").count == 1
        # Client classes did not absorb the degraded traffic.
        assert hists.get("client_write").count == 1
        assert hists.get("client_read").count == 1

    def test_rebuild_restores_fast_path_classification(self):
        sim = Simulator()
        array = toy_array(sim, policy=AlwaysRaid5Policy())
        hists = HistogramSet()
        array.attach_observability(histograms=hists)
        manager = RebuildManager(sim, array, yield_to_foreground=False)
        spare = toy_disk(sim, name="spare")
        done = manager.fail_and_rebuild(1, spare)
        sim.run_until_triggered(done)
        assert array.degraded_disk is None
        sim.run_until_triggered(array.submit(read(0, 8)))
        sim.run_until_triggered(array.submit(write(0, 8)))
        assert hists.get("client_read").count == 1
        assert hists.get("client_write").count == 1
        assert hists.get("degraded_read").count == 0
        assert hists.get("degraded_write").count == 0


class TestSubUnitPrediction:
    def test_prediction_matches_twin_loss_with_sub_unit_marks(self):
        """Satellite: with bits_per_stripe > 1 the prediction must count
        only the marked slices, matching the twin's ground truth."""
        sim = Simulator()
        array = toy_array(sim, policy=NeverScrubPolicy(), bits_per_stripe=4)
        # Small writes dirty only one sub-unit of their stripe.
        for stripe in range(6):
            offset = stripe * array.layout.stripe_data_sectors
            sim.run_until_triggered(array.submit(write(offset, 2)))
        assert array.marks.count == 6
        for disk in range(array.ndisks):
            predicted = predicted_loss_bytes(array, disk)
            actual = array.functional.lost_data_bytes(disk)
            assert predicted == actual
            # Sub-unit marks predict a fraction of the whole-unit figure.
            assert predicted < 6 * array.unit_bytes

    def test_whole_unit_prediction_unchanged_with_one_bit(self):
        sim = Simulator()
        array = toy_array(sim, policy=NeverScrubPolicy())
        for stripe in range(4):
            offset = stripe * array.layout.stripe_data_sectors
            sim.run_until_triggered(array.submit(write(offset, 2)))
        for disk in range(array.ndisks):
            assert predicted_loss_bytes(array, disk) == array.functional.lost_data_bytes(disk)

    def test_report_carries_prediction(self):
        sim = Simulator()
        array = toy_array(sim, policy=NeverScrubPolicy(), bits_per_stripe=2)
        injector = FaultInjector(sim, array)
        sim.run_until_triggered(array.submit(write(0, 2)))
        injector.fail_disk_at(disk=0, at_time=sim.now + 0.5)
        sim.run(until=sim.now + 1.0)
        report = injector.reports[0]
        assert report.predicted_loss_bytes == report.lost_data_bytes
