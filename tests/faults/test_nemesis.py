"""Tests for the continuous nemesis loop and its schedule drawing."""

import random

import pytest

from repro.faults import (
    ActiveFault,
    ActiveFaultsTracker,
    CampaignSpec,
    FaultCampaign,
    NemesisSpec,
    draw_fault_schedule,
)
from repro.harness import run_nemesis, write_nemesis_report


QUICK = NemesisSpec(
    duration_s=8.0,
    disk_failures=2.0,
    nvram_losses=1.0,
    latent_errors=1.0,
    settle_s=1.0,
)
RULES = ("degraded_disks < 1", "scrub_backlog_marks <= 64")


class TestDrawFaultSchedule:
    def test_matches_campaign_schedule_for_same_seed(self):
        """The extracted draw is the campaign's, call-order included."""
        spec = CampaignSpec(
            duration_s=20.0, disk_failures=2.0, nvram_losses=1.5,
            latent_errors=2.0, crashes=1.0, crash_points=(3.0,),
        )
        campaign = FaultCampaign(spec, seed=42)
        from_campaign = campaign._draw_schedule(random.Random(42))
        standalone = draw_fault_schedule(
            random.Random(42),
            duration_s=spec.duration_s, ndisks=spec.ndisks,
            disk_failures=spec.disk_failures, nvram_losses=spec.nvram_losses,
            latent_errors=spec.latent_errors, crashes=spec.crashes,
            crash_points=spec.crash_points, max_faults=spec.max_faults,
        )
        assert standalone == from_campaign

    def test_deterministic_and_bounded(self):
        events, crashes = draw_fault_schedule(
            random.Random(7), duration_s=30.0, ndisks=5,
            disk_failures=10.0, latent_errors=10.0, max_faults=4,
        )
        again, _ = draw_fault_schedule(
            random.Random(7), duration_s=30.0, ndisks=5,
            disk_failures=10.0, latent_errors=10.0, max_faults=4,
        )
        assert events == again
        # max_faults caps each kind independently.
        by_kind = {}
        for event in events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        assert all(count <= 4 for count in by_kind.values()), by_kind
        assert events == sorted(events, key=lambda e: e.time_s)
        assert crashes == []


class TestNemesisSpec:
    def test_defaults_are_valid(self):
        spec = NemesisSpec()
        assert spec.workload == "snake"
        assert spec.to_dict()["duration_s"] == spec.duration_s

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"duration_s": 0.0},
            {"period_s": 0.0},
            {"sample_period_s": -1.0},
            {"disk_model": "bogus"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            NemesisSpec(**kwargs)


class TestActiveFaultsTracker:
    def test_lifecycle_and_counts(self):
        from repro.obs import Timeline

        timeline = Timeline()
        inject_a = timeline.fault_injected(1.0, "disk_failure", disk=2)
        inject_b = timeline.fault_injected(2.0, "nvram_loss")
        tracker = ActiveFaultsTracker()
        first = ActiveFault(kind="disk_failure", injected_at=1.0, event=inject_a, disk=2)
        second = ActiveFault(kind="nvram_loss", injected_at=2.0, event=inject_b)
        tracker.injected(first)
        tracker.injected(second)
        assert tracker.counts() == {"disk_failure": 1, "nvram_loss": 1}
        assert [fault.event for fault in tracker.open_faults()] == [
            inject_a, inject_b,
        ]
        assert first.open_for(3.0) == pytest.approx(2.0)

        cleared = tracker.cleared(inject_a.id, 4.0, "rebuilt")
        assert cleared is first
        assert not first.open
        assert first.resolution == "rebuilt"
        assert first.open_for(9.0) == pytest.approx(3.0)
        assert tracker.open_faults() == [second]
        assert tracker.cleared("evt-bogus", 4.0, "?") is None
        rows = tracker.inventory_rows(5.0)
        assert len(rows) == 1  # only still-open faults inventoried


class TestRunNemesis:
    """One small seeded run, reused across assertions (runs take ~0.1s)."""

    @pytest.fixture(scope="class")
    def outcome(self):
        return run_nemesis(QUICK, seed=3, rules=RULES)

    def test_invariants_hold(self, outcome):
        assert outcome.violations == []
        assert outcome.ok

    def test_faults_were_injected(self, outcome):
        injected = outcome.timeline.events_of("fault.inject")
        assert injected
        assert outcome.loop.tracker.counts()

    def test_gate_holds_injection_during_breach(self, outcome):
        """Between each hold and its resume, nothing is injected."""
        holds = outcome.timeline.events_of("nemesis.hold")
        assert holds, "quick spec should provoke at least one hold"
        for hold in holds:
            resume = next(
                event
                for event in outcome.timeline.events_of("nemesis.resume")
                if event.cause == hold.id
            )
            held = [
                event
                for event in outcome.timeline.events_of("fault.inject")
                if hold.seq < event.seq < resume.seq
            ]
            assert held == [], f"injected during hold {hold.id}: {held}"

    def test_breaches_are_cause_linked_to_faults(self, outcome):
        fault_ids = {e.id for e in outcome.timeline.events_of("fault.inject")}
        breaches = outcome.timeline.events_of("slo.breach")
        assert breaches
        for breach in breaches:
            assert breach.cause in fault_ids

    def test_rebuild_spans_all_close(self, outcome):
        starts = outcome.timeline.events_of("rebuild.start")
        finishes = outcome.timeline.events_of("rebuild.finish")
        assert len(starts) == len(finishes)
        assert all(f.duration_s is not None and f.duration_s > 0 for f in finishes)

    def test_same_seed_rerun_is_byte_identical(self, outcome):
        rerun = run_nemesis(QUICK, seed=3, rules=RULES)
        assert rerun.timeline.to_jsonl() == outcome.timeline.to_jsonl()

    def test_different_seed_differs(self, outcome):
        other = run_nemesis(QUICK, seed=4, rules=RULES)
        assert other.timeline.to_jsonl() != outcome.timeline.to_jsonl()

    def test_summary_payload_shape(self, outcome):
        payload = outcome.summary_payload()
        assert sum(payload["faults"]["injected"].values()) == len(
            outcome.timeline.events_of("fault.inject")
        )
        assert payload["slo"]["rules"] == list(RULES)
        assert payload["invariants"] == {"ok": True, "violations": []}
        assert payload["timeline"]["events"] == len(outcome.timeline)

    def test_report_bundle(self, outcome, tmp_path):
        paths = write_nemesis_report(outcome, tmp_path / "report")
        for name in ("timeline", "trace", "metrics", "incident", "summary"):
            assert paths[name].is_file(), name
        assert paths["timeline"].read_text() == outcome.timeline.to_jsonl()
        assert "Nemesis incident report" in paths["incident"].read_text()
