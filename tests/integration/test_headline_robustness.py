"""Seed robustness of the headline result.

The benchmarks pin one seed; this test checks the qualitative claim —
AFRAID ≈ RAID 0 ≫ RAID 5 in the cross-workload geometric mean — holds
across random seeds and a reduced workload sample, so the reproduction
is not an artifact of one lucky trace draw.
"""

import pytest

from repro.harness import run_experiment
from repro.metrics import geometric_mean
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, NeverScrubPolicy

# A light / medium / heavy sample of the catalog keeps runtime modest.
WORKLOADS = ("hplajw", "cello-usr", "ATT")


@pytest.mark.parametrize("seed", [3, 17])
def test_headline_shape_across_seeds(seed):
    speedups_afraid = []
    speedups_raid0 = []
    for workload in WORKLOADS:
        results = {
            label: run_experiment(workload, policy_cls(), duration_s=30.0, seed=seed)
            for label, policy_cls in (
                ("raid0", NeverScrubPolicy),
                ("afraid", BaselineAfraidPolicy),
                ("raid5", AlwaysRaid5Policy),
            )
        }
        raid5_mean = results["raid5"].io_time.mean
        speedups_afraid.append(raid5_mean / results["afraid"].io_time.mean)
        speedups_raid0.append(raid5_mean / results["raid0"].io_time.mean)
        # Per-workload: AFRAID always beats RAID 5 and tracks RAID 0.
        assert speedups_afraid[-1] > 1.5, workload
        assert (
            results["afraid"].io_time.mean < 1.35 * results["raid0"].io_time.mean
        ), workload
        # Exposure ordering holds for every seed.
        assert results["raid5"].unprotected_fraction == 0.0
        assert (
            results["afraid"].unprotected_fraction
            <= results["raid0"].unprotected_fraction + 1e-9
        ), workload

    # Cross-workload geometric means: several-fold, AFRAID ~ RAID 0.
    assert geometric_mean(speedups_afraid) > 2.0
    assert geometric_mean(speedups_afraid) > 0.85 * geometric_mean(speedups_raid0)
