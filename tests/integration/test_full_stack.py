"""Integration tests: the timing model and the functional twin together.

These drive the whole stack — kernel, disks, drivers, cache, marks, idle
detection, scrubber, policies — and check end-to-end invariants the unit
tests cannot see.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind
from repro.harness import gather, run_experiment
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, NeverScrubPolicy
from repro.sim import Simulator


def payload(array, nsectors, seed):
    return bytes((seed * 97 + i) % 256 for i in range(nsectors * array.sector_bytes))


request_strategy = st.lists(
    st.tuples(
        st.booleans(),  # write?
        st.integers(min_value=0, max_value=500),  # offset basis
        st.integers(min_value=1, max_value=12),  # sectors
        st.integers(min_value=0, max_value=255),  # payload seed
        st.floats(min_value=0.0, max_value=0.2),  # think time before submit
    ),
    min_size=1,
    max_size=25,
)


class TestTimingFunctionalAgreement:
    @given(requests=request_strategy)
    @settings(max_examples=25, deadline=None)
    def test_data_integrity_and_scrub_convergence(self, requests):
        """After any request mix + idle time: every byte reads back, every
        stripe's parity is consistent, and the parity debt is zero."""
        sim = Simulator()
        array = toy_array(sim, idle_threshold_s=0.05)
        expected: dict[int, bytes] = {}
        events = []
        in_flight: list[tuple[int, int, object]] = []  # (offset, nsectors, event)

        def overlaps(offset, nsectors):
            return [
                event
                for start, count, event in in_flight
                if offset < start + count and start < offset + nsectors
            ]

        def client():
            for is_write, offset_basis, nsectors, seed, think in requests:
                offset = offset_basis % (array.layout.total_data_sectors - nsectors)
                if think:
                    yield sim.timeout(think)
                if is_write:
                    # Overlapping concurrent writes have no defined order
                    # (the host queue may legally reorder them), so the
                    # oracle serialises them the way a correct client would.
                    for event in overlaps(offset, nsectors):
                        if not event.processed:
                            yield event
                    data = payload(array, nsectors, seed)
                    for i in range(nsectors):
                        expected[offset + i] = data[
                            i * array.sector_bytes : (i + 1) * array.sector_bytes
                        ]
                    request = ArrayRequest(IoKind.WRITE, offset, nsectors, data=data)
                else:
                    request = ArrayRequest(IoKind.READ, offset, nsectors)
                event = array.submit(request)
                if is_write:
                    in_flight.append((offset, nsectors, event))
                events.append(event)

        proc = sim.process(client())
        sim.run_until_triggered(proc)
        outcomes = sim.run_until_triggered(gather(sim, events))
        assert all(ok for ok, _value in outcomes)

        sim.run(until=sim.now + 5.0)  # plenty of idle time to scrub
        assert array.dirty_stripe_count == 0
        assert array.parity_lag_bytes == 0
        assert all(
            array.functional.parity_consistent(stripe)
            for stripe in range(array.layout.nstripes)
        )
        for sector, data in expected.items():
            assert array.functional.read(sector, 1) == data

    @given(requests=request_strategy, victim=st.integers(min_value=0, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_loss_prediction_matches_ground_truth(self, requests, victim):
        """At any instant, the §3.2 loss model equals the functional
        twin's actual unrecoverable bytes."""
        from repro.faults import predicted_loss_bytes

        sim = Simulator()
        array = toy_array(sim, policy=NeverScrubPolicy())
        events = []

        def client():
            for is_write, offset_basis, nsectors, seed, think in requests:
                offset = offset_basis % (array.layout.total_data_sectors - nsectors)
                kind = IoKind.WRITE if is_write else IoKind.READ
                data = payload(array, nsectors, seed) if is_write else None
                events.append(array.submit(ArrayRequest(kind, offset, nsectors, data=data)))
                yield sim.timeout(0.001)

        proc = sim.process(client())
        sim.run_until_triggered(proc)
        sim.run_until_triggered(gather(sim, events))

        predicted = predicted_loss_bytes(array, victim)
        actual = array.functional.lost_data_bytes(victim)
        assert predicted == actual


class TestDeterminism:
    def test_identical_experiments_identical_results(self):
        from repro.disk import toy_disk

        def run():
            return run_experiment(
                "snake",
                BaselineAfraidPolicy(),
                duration_s=10.0,
                seed=7,
                disk_factory=toy_disk,
                stripe_unit_sectors=8,
            )

        first = run()
        second = run()
        assert first.io_time.mean == second.io_time.mean
        assert first.unprotected_fraction == second.unprotected_fraction
        assert first.stripes_scrubbed == second.stripes_scrubbed
        assert first.nrequests == second.nrequests

    def test_different_seeds_differ(self):
        from repro.disk import toy_disk

        first = run_experiment("snake", BaselineAfraidPolicy(), duration_s=10.0, seed=7,
                               disk_factory=toy_disk, stripe_unit_sectors=8)
        second = run_experiment("snake", BaselineAfraidPolicy(), duration_s=10.0, seed=8,
                                disk_factory=toy_disk, stripe_unit_sectors=8)
        assert first.io_time.mean != second.io_time.mean


class TestCrossModelInvariants:
    @pytest.mark.parametrize("workload", ["snake", "cello-news"])
    def test_model_ordering_on_real_workloads(self, workload):
        from repro.disk import toy_disk

        results = {}
        for label, policy_cls in (
            ("raid0", NeverScrubPolicy),
            ("afraid", BaselineAfraidPolicy),
            ("raid5", AlwaysRaid5Policy),
        ):
            results[label] = run_experiment(
                workload, policy_cls(), duration_s=15.0, seed=5,
                disk_factory=toy_disk, stripe_unit_sectors=8,
            )
        # Identical request streams:
        counts = {result.nrequests for result in results.values()}
        assert len(counts) == 1
        # Performance ordering (with a little scheduling noise allowed
        # between afraid and raid0):
        assert results["afraid"].io_time.mean < results["raid5"].io_time.mean
        assert results["afraid"].io_time.mean < 1.35 * results["raid0"].io_time.mean
        # Exposure ordering:
        assert results["raid5"].unprotected_fraction == 0.0
        assert results["afraid"].unprotected_fraction <= results["raid0"].unprotected_fraction
        # Availability ordering:
        assert (
            results["raid5"].mttdl_disk_h
            >= results["afraid"].mttdl_disk_h
            >= results["raid0"].mttdl_disk_h
        )

    def test_all_requests_complete_under_saturation(self):
        """Open-loop overload: the array falls behind but loses nothing."""
        sim = Simulator()
        array = toy_array(sim, with_functional=False, idle_threshold_s=1e9)
        events = []

        def flood():
            for i in range(200):
                events.append(
                    array.submit(ArrayRequest(IoKind.WRITE, (i * 16) % 1024, 8))
                )
                yield sim.timeout(0.0005)  # far faster than service rate

        proc = sim.process(flood())
        sim.run_until_triggered(proc)
        outcomes = sim.run_until_triggered(gather(sim, events))
        assert len(outcomes) == 200
        assert all(ok for ok, _value in outcomes)
        assert array.stats.completed == 200
        # Queueing really happened:
        times = array.stats.io_times
        assert max(times) > 5 * min(times)
