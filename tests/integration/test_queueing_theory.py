"""Queueing-theory validation of the simulation kernel + disk stack.

If the DES is right, a single FCFS disk under Poisson arrivals must obey
the Pollaczek-Khinchine formula for M/G/1 queues:

    W_q = λ · E[S²] / (2 · (1 − ρ)),   ρ = λ · E[S]

where S is the (general) service-time distribution — here produced by
the full mechanical disk model.  We measure E[S] and E[S²] empirically
from the same request mix, so the comparison isolates the *queueing*
behaviour of the kernel and driver from the service-time model.
"""

import numpy as np
import pytest

from repro.disk import DiskIO, IoKind, toy_disk
from repro.sched import DiskDriver
from repro.sim import Simulator


def run_poisson_experiment(arrival_rate, n_requests=2000, seed=9):
    """Poisson arrivals of uniformly-placed 8-sector reads to one disk."""
    rng = np.random.default_rng(seed)
    sim = Simulator()
    disk = toy_disk(sim, cylinders=128)
    driver = DiskDriver(sim, disk)
    space = disk.geometry.total_sectors - 8

    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_requests))
    offsets = (rng.integers(0, space, size=n_requests) // 8) * 8
    records: list[tuple[float, float, float]] = []  # (submit, done, service)

    def feeder():
        # Open loop: submissions follow the Poisson clock, never completions.
        for arrival, offset in zip(arrivals, offsets):
            if arrival > sim.now:
                yield sim.timeout(arrival - sim.now)
            submitted = sim.now
            event = driver.submit(DiskIO(IoKind.READ, int(offset), 8))
            event.add_callback(
                lambda e, t0=submitted: records.append((t0, sim.now, e.value.total))
            )

    proc = sim.process(feeder())
    sim.run_until_triggered(proc)
    sim.run()  # drain the queue
    waits = np.array([done - submitted - service for submitted, done, service in records])
    services = np.array([service for _submitted, _done, service in records])
    return waits, services


class TestPollaczekKhinchine:
    @pytest.mark.parametrize("arrival_rate", [20.0, 50.0])
    def test_mean_queue_wait_matches_mg1(self, arrival_rate):
        waits, services = run_poisson_experiment(arrival_rate)
        mean_service = services.mean()
        second_moment = (services**2).mean()
        utilisation = arrival_rate * mean_service
        assert utilisation < 0.9, "experiment must stay stable"
        predicted = arrival_rate * second_moment / (2.0 * (1.0 - utilisation))
        measured = waits.mean()
        # 25% tolerance: finite sample + the service process is weakly
        # state-dependent (seek distance depends on the previous request),
        # which M/G/1 ignores.
        assert measured == pytest.approx(predicted, rel=0.25)

    def test_light_load_has_negligible_queueing(self):
        waits, services = run_poisson_experiment(arrival_rate=2.0)
        assert waits.mean() < 0.15 * services.mean()

    def test_queueing_grows_superlinearly_with_load(self):
        light_waits, _ = run_poisson_experiment(arrival_rate=20.0)
        heavy_waits, _ = run_poisson_experiment(arrival_rate=60.0)
        assert heavy_waits.mean() > 4 * light_waits.mean()
