"""Unit and property tests for the Simulator run loop."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=100.0).now == 100.0

    def test_run_until_advances_clock_even_with_no_events(self):
        sim = Simulator()
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_run_backwards_rejected(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.run(until=5.0)

    def test_events_beyond_until_are_preserved(self):
        sim = Simulator()
        fired = []
        sim.timeout(10.0).add_callback(lambda e: fired.append(sim.now))
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()
        assert fired == [10.0]

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        assert sim.peek() == 3.0


class TestRunUntilTriggered:
    def test_returns_value(self):
        sim = Simulator()
        timeout = sim.timeout(2.0, value="v")
        assert sim.run_until_triggered(timeout) == "v"
        assert sim.now == 2.0

    def test_raises_if_queue_drains_first(self):
        sim = Simulator()
        event = sim.event()  # never triggered
        sim.timeout(1.0)
        with pytest.raises(RuntimeError):
            sim.run_until_triggered(event)


class TestTrace:
    def test_trace_hook_sees_every_dispatch(self):
        sim = Simulator()
        seen = []
        sim.set_trace(lambda t, e: seen.append(t))
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert seen == [1.0, 2.0]


class TestDeterminism:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for i, delay in enumerate(delays):
            sim.timeout(delay, value=i).add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert len(fired) == len(delays)
        assert fired == sorted(fired)

    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_identical_programs_produce_identical_trajectories(self, delays):
        def trajectory():
            sim = Simulator()
            log = []
            for i, delay in enumerate(delays):
                sim.timeout(delay, value=i).add_callback(
                    lambda e: log.append((sim.now, e.value))
                )
            sim.run()
            return log

        assert trajectory() == trajectory()

    @given(
        ties=st.integers(min_value=2, max_value=20),
        delay=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_simultaneous_events_fire_in_schedule_order(self, ties, delay):
        sim = Simulator()
        fired = []
        for i in range(ties):
            sim.timeout(delay, value=i).add_callback(lambda e: fired.append(e.value))
        sim.run()
        assert fired == list(range(ties))


class TestBatchTimeouts:
    def test_batch_matches_individual_scheduling(self):
        sim = Simulator()
        fired = []
        for timeout in sim.timeouts([3.0, 1.0, 2.0]):
            timeout.add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_batch_interleaves_with_singles(self):
        sim = Simulator()
        fired = []
        sim.timeout(1.5).add_callback(lambda e: fired.append("single"))
        for timeout in sim.timeouts([1.0, 2.0]):
            timeout.add_callback(lambda e: fired.append("batch"))
        sim.run()
        assert fired == ["batch", "single", "batch"]

    def test_negative_delay_rejected(self):
        import pytest

        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeouts([1.0, -0.5])

    def test_batch_value(self):
        sim = Simulator()
        (timeout,) = sim.timeouts([1.0], value="v")
        sim.run()
        assert timeout.value == "v"


class TestEventsDispatched:
    def test_counts_dispatches_not_pending(self):
        sim = Simulator()
        sim.timeout(1.0)
        sim.timeout(5.0)
        assert sim.events_dispatched == 0
        sim.run(until=2.0)
        assert sim.events_dispatched == 1
        sim.run()
        assert sim.events_dispatched == 2

    def test_counts_process_machinery(self):
        sim = Simulator()

        def hopper():
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.process(hopper())
        sim.run()
        # Bootstrap event + two timeouts.  The process completion event is
        # elided when nothing listens for it (dispatching it would be a
        # no-op), so it does not count.
        assert sim.events_dispatched == 3

    def test_counts_awaited_process_completion(self):
        sim = Simulator()

        def hopper():
            yield sim.timeout(1.0)

        def waiter(proc):
            yield proc

        proc = sim.process(hopper())
        sim.process(waiter(proc))
        sim.run()
        # Two bootstraps + one timeout + hopper's completion event (it has
        # a listener, so it is scheduled and dispatched).  The waiter's own
        # completion is listener-free and elided.
        assert sim.events_dispatched == 4
