"""Unit tests for coroutine processes."""

import pytest

from repro.sim import AllOf, Interrupt, Process, ProcessKilled, Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestBasics:
    def test_process_runs_and_returns(self, sim):
        def body():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return "finished"

        proc = sim.process(body())
        sim.run()
        assert sim.now == 3.0
        assert proc.value == "finished"

    def test_process_is_event_waitable(self, sim):
        def child():
            yield sim.timeout(1.0)
            return 7

        def parent():
            value = yield sim.process(child())
            return value * 2

        parent_proc = sim.process(parent())
        sim.run()
        assert parent_proc.value == 14

    def test_process_receives_event_value(self, sim):
        def body():
            value = yield sim.timeout(1.0, value="payload")
            return value

        proc = sim.process(body())
        sim.run()
        assert proc.value == "payload"

    def test_starts_at_current_time_without_advancing(self, sim):
        times = []

        def body():
            times.append(sim.now)
            yield sim.timeout(0.5)

        def spawner():
            yield sim.timeout(3.0)
            sim.process(body())

        sim.process(spawner())
        sim.run()
        assert times == [3.0]

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_yielding_non_event_fails_process(self, sim):
        def body():
            yield 42  # not an Event

        proc = sim.process(body())
        proc.defused = True
        sim.run()
        assert isinstance(proc.exception, TypeError)

    def test_is_alive(self, sim):
        def body():
            yield sim.timeout(5.0)

        proc = sim.process(body())
        assert proc.is_alive
        sim.run()
        assert not proc.is_alive


class TestFailurePropagation:
    def test_failed_event_raises_inside_process(self, sim):
        trigger = sim.event()

        def body():
            try:
                yield trigger
            except ValueError as exc:
                return f"caught {exc}"

        proc = sim.process(body())
        trigger.fail(ValueError("boom"))
        sim.run()
        assert proc.value == "caught boom"

    def test_uncaught_exception_fails_process(self, sim):
        def body():
            yield sim.timeout(1.0)
            raise RuntimeError("died")

        proc = sim.process(body())
        proc.defused = True
        sim.run()
        assert isinstance(proc.exception, RuntimeError)

    def test_uncaught_exception_surfaces_in_run(self, sim):
        def body():
            yield sim.timeout(1.0)
            raise RuntimeError("unwatched crash")

        sim.process(body())
        with pytest.raises(RuntimeError, match="unwatched crash"):
            sim.run()

    def test_failure_propagates_to_waiting_parent(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise ValueError("child died")

        def parent():
            try:
                yield sim.process(child())
            except ValueError:
                return "handled"

        proc = sim.process(parent())
        sim.run()
        assert proc.value == "handled"


class TestInterrupt:
    def test_interrupt_wakes_process_early(self, sim):
        def body():
            try:
                yield sim.timeout(100.0)
                return "slept"
            except Interrupt as interrupt:
                return ("interrupted", sim.now, interrupt.cause)

        proc = sim.process(body())

        def interrupter():
            yield sim.timeout(2.0)
            proc.interrupt("new work arrived")

        sim.process(interrupter())
        sim.run()
        assert proc.value == ("interrupted", 2.0, "new work arrived")

    def test_original_event_firing_after_interrupt_is_ignored(self, sim):
        resumes = []

        def body():
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                resumes.append(("interrupt", sim.now))
            yield sim.timeout(50.0)
            resumes.append(("done", sim.now))

        proc = sim.process(body())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt()

        sim.process(interrupter())
        sim.run()
        # The abandoned 10 s timeout (fires at 10.0) must not resume the body.
        assert resumes == [("interrupt", 1.0), ("done", 51.0)]

    def test_interrupting_finished_process_is_noop(self, sim):
        def body():
            yield sim.timeout(1.0)
            return "ok"

        proc = sim.process(body())
        sim.run()
        proc.interrupt()  # must not raise
        assert proc.value == "ok"

    def test_unhandled_interrupt_fails_process(self, sim):
        def body():
            yield sim.timeout(100.0)

        proc = sim.process(body())
        proc.defused = True

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt()

        sim.process(interrupter())
        sim.run()
        assert isinstance(proc.exception, Interrupt)


class TestKill:
    def test_kill_stops_process(self, sim):
        reached = []

        def body():
            yield sim.timeout(10.0)
            reached.append("end")

        proc = sim.process(body())
        proc.defused = True

        def killer():
            yield sim.timeout(1.0)
            proc.kill()

        sim.process(killer())
        sim.run()
        assert reached == []
        assert isinstance(proc.exception, ProcessKilled)

    def test_kill_runs_finally_blocks(self, sim):
        cleaned = []

        def body():
            try:
                yield sim.timeout(10.0)
            finally:
                cleaned.append(True)

        proc = sim.process(body())
        proc.defused = True

        def killer():
            yield sim.timeout(1.0)
            proc.kill()

        sim.process(killer())
        sim.run()
        assert cleaned == [True]


class TestComposition:
    def test_parallel_fanout_with_allof(self, sim):
        """The RAID 5 pattern: issue several I/Os, wait for all."""

        def disk_io(latency):
            yield sim.timeout(latency)
            return latency

        def controller():
            ios = [sim.process(disk_io(t)) for t in (3.0, 1.0, 2.0)]
            results = yield AllOf(sim, ios)
            return results

        proc = sim.process(controller())
        sim.run()
        assert sim.now == 3.0
        assert proc.value == [3.0, 1.0, 2.0]

    def test_many_processes_interleave_deterministically(self, sim):
        order = []

        def body(tag, delay):
            yield sim.timeout(delay)
            order.append(tag)

        for tag in "abc":
            sim.process(body(tag, 1.0))  # identical delays: FIFO tie-break
        sim.run()
        assert order == ["a", "b", "c"]
