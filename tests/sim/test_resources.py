"""Unit tests for the counted Resource."""

import pytest

from repro.sim import Resource, Simulator


@pytest.fixture()
def sim():
    return Simulator()


def test_capacity_validation(sim):
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_immediate_grant_when_free(sim):
    resource = Resource(sim, capacity=2)
    grant = resource.acquire()
    assert grant.triggered
    assert resource.in_use == 1
    assert resource.available == 1


def test_waiters_queue_in_fifo_order(sim):
    resource = Resource(sim, capacity=1)
    order = []

    def worker(tag, hold):
        yield resource.acquire()
        try:
            order.append((tag, sim.now))
            yield sim.timeout(hold)
        finally:
            resource.release()

    for tag, hold in (("a", 5.0), ("b", 1.0), ("c", 1.0)):
        sim.process(worker(tag, hold))
    sim.run()
    assert order == [("a", 0.0), ("b", 5.0), ("c", 6.0)]


def test_release_without_acquire_raises(sim):
    resource = Resource(sim, capacity=1)
    with pytest.raises(RuntimeError):
        resource.release()


def test_queued_counter(sim):
    resource = Resource(sim, capacity=1)

    def holder():
        yield resource.acquire()
        yield sim.timeout(10.0)
        resource.release()

    def waiter():
        yield resource.acquire()
        resource.release()

    sim.process(holder())
    sim.process(waiter())
    sim.process(waiter())
    sim.run(until=1.0)
    assert resource.in_use == 1
    assert resource.queued == 2
    sim.run()
    assert resource.in_use == 0
    assert resource.queued == 0


def test_full_capacity_utilisation(sim):
    """With capacity k and n > k equal jobs, makespan is ceil(n/k) * job."""
    resource = Resource(sim, capacity=3)
    done = []

    def worker():
        yield resource.acquire()
        yield sim.timeout(2.0)
        resource.release()
        done.append(sim.now)

    for _ in range(7):
        sim.process(worker())
    sim.run()
    assert len(done) == 7
    assert max(done) == pytest.approx(6.0)  # ceil(7/3) = 3 waves of 2 s
