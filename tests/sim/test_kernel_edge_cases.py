"""Edge-case and composition tests for the simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, AnyOf, Interrupt, Resource, Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestNestedConditions:
    def test_allof_of_anyofs(self, sim):
        def racer(fast, slow):
            value = yield AnyOf(sim, [sim.timeout(fast, value="fast"), sim.timeout(slow, value="slow")])
            return value

        combined = AllOf(sim, [sim.process(racer(1.0, 5.0)), sim.process(racer(2.0, 3.0))])
        sim.run()
        assert combined.value == ["fast", "fast"]
        assert sim.now == 5.0  # the losing timeouts still fire

    def test_anyof_of_allofs(self, sim):
        slow_pair = AllOf(sim, [sim.timeout(4.0), sim.timeout(5.0)])
        fast_pair = AllOf(sim, [sim.timeout(1.0), sim.timeout(2.0)])
        winner = AnyOf(sim, [slow_pair, fast_pair])
        fired = []
        winner.add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [2.0]

    def test_allof_with_already_triggered_children(self, sim):
        done = sim.event()
        done.succeed("early")
        sim.run()
        combined = AllOf(sim, [done, sim.timeout(1.0, value="late")])
        sim.run()
        assert combined.value == ["early", "late"]

    def test_deep_chain_of_processes(self, sim):
        """A 100-deep chain of processes waiting on each other resolves."""

        def link(previous):
            if previous is None:
                yield sim.timeout(0.001)
                return 1
            depth = yield previous
            return depth + 1

        process = None
        for _ in range(100):
            process = sim.process(link(process))
        sim.run()
        assert process.value == 100


class TestInterruptEdgeCases:
    def test_interrupt_while_waiting_on_allof(self, sim):
        def body():
            try:
                yield AllOf(sim, [sim.timeout(10.0), sim.timeout(20.0)])
                return "finished"
            except Interrupt:
                return ("interrupted", sim.now)

        proc = sim.process(body())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt()

        sim.process(interrupter())
        sim.run()
        assert proc.value == ("interrupted", 1.0)

    def test_double_interrupt_delivers_once_each(self, sim):
        hits = []

        def body():
            for _ in range(2):
                try:
                    yield sim.timeout(100.0)
                except Interrupt as interrupt:
                    hits.append(interrupt.cause)
            return hits

        proc = sim.process(body())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt("first")
            yield sim.timeout(1.0)
            proc.interrupt("second")

        sim.process(interrupter())
        sim.run()
        assert proc.value == ["first", "second"]

    def test_interrupt_race_with_completion(self, sim):
        """Interrupt scheduled for the same instant the wait completes:
        exactly one of the two outcomes happens, deterministically."""

        def body():
            try:
                yield sim.timeout(1.0)
                return "completed"
            except Interrupt:
                return "interrupted"

        proc = sim.process(body())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt()

        sim.process(interrupter())
        sim.run()
        # The timeout fires first (scheduled earlier at the same instant).
        assert proc.value == "completed"


class TestResourceStress:
    @given(
        jobs=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2.0),  # arrival offset
                st.floats(min_value=0.001, max_value=0.5),  # hold time
            ),
            min_size=1,
            max_size=40,
        ),
        capacity=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded_and_all_served(self, jobs, capacity):
        sim = Simulator()
        resource = Resource(sim, capacity=capacity)
        peak = [0]
        served = []

        def worker(arrival, hold):
            yield sim.timeout(arrival)
            yield resource.acquire()
            try:
                peak[0] = max(peak[0], resource.in_use)
                yield sim.timeout(hold)
            finally:
                resource.release()
            served.append(True)

        for arrival, hold in jobs:
            sim.process(worker(arrival, hold))
        sim.run()
        assert len(served) == len(jobs)
        assert peak[0] <= capacity
        assert resource.in_use == 0
        assert resource.queued == 0
