"""CalendarQueue order-equivalence: property-tested against a heap oracle.

The bucket+heap calendar discipline (repro.sim.calendar) promises exactly
``(time, seq)`` pop order — time order with FIFO tie-break for equal
times — without storing sequence numbers for current-instant entries.
These tests drive it with randomized schedule/cancel/bulk workloads and
compare every pop against a plain ``heapq`` reference that *does* key on
``(time, seq)``.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calendar import CalendarQueue


class HeapReference:
    """The oracle: one binary heap keyed on (time, seq), lazy cancellation."""

    def __init__(self) -> None:
        self._heap = []
        self._sequence = 0
        self._now = 0.0

    def push(self, when, item):
        self._sequence += 1
        entry = [when, self._sequence, item, True]
        heapq.heappush(self._heap, entry)
        return entry

    def cancel(self, token):
        if token[3]:
            token[3] = False
            return True
        return False

    def pop(self):
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry[3]:
                entry[3] = False  # popped tokens read as dead, like the queue's
                self._now = entry[0]
                return entry[0], entry[2]
        raise IndexError("pop from empty reference")

    def __len__(self):
        return sum(1 for entry in self._heap if entry[3])


#: One workload step: (op, delay-bucket, cancel-choice).  Delays draw from
#: a tiny set so simultaneous timestamps (the interesting tie-break case)
#: occur constantly; op > 0.6 pops, 0.25–0.6 schedules, < 0.25 cancels a
#: random live token.
STEPS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.sampled_from([0.0, 0.0, 0.5, 1.0, 1.0, 2.5]),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=120,
)


def _drain_both(queue, reference):
    popped = []
    while queue:
        popped.append(queue.pop())
    expected = []
    while len(reference):
        expected.append(reference.pop())
    return popped, expected


class TestOrderEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(steps=STEPS)
    def test_interleaved_schedule_cancel_pop(self, steps):
        queue = CalendarQueue()
        reference = HeapReference()
        tokens = []  # (queue_token, reference_token) pairs, parallel lists
        item = 0
        for op, delay, pick in steps:
            if op > 0.6 and queue:
                got = queue.pop()
                want = reference.pop()
                assert got == want
            elif op >= 0.25 or not tokens:
                item += 1
                when = queue.now + delay
                tokens.append((queue.push(when, item), reference.push(when, item)))
            else:
                qtok, rtok = tokens[pick % len(tokens)]
                assert queue.cancel(qtok) == reference.cancel(rtok)
        assert len(queue) == len(reference)
        popped, expected = _drain_both(queue, reference)
        assert popped == expected

    @settings(max_examples=50, deadline=None)
    @given(
        delays=st.lists(
            st.sampled_from([0.0, 0.0, 0.0, 1.0, 1.0, 3.0]), min_size=1, max_size=60
        )
    )
    def test_bulk_push_matches_singles(self, delays):
        # bulk_push must hand out the same pop order as one-at-a-time
        # pushes — including the zero-delay entries, which must land in
        # the bucket (heapifying them would invert same-instant FIFO).
        queue = CalendarQueue()
        reference = HeapReference()
        queue.bulk_push((delay, index) for index, delay in enumerate(delays))
        for index, delay in enumerate(delays):
            reference.push(delay, index)
        popped, expected = _drain_both(queue, reference)
        assert popped == expected

    @settings(max_examples=50, deadline=None)
    @given(steps=STEPS)
    def test_simultaneous_timestamps_pop_fifo(self, steps):
        # All entries at one instant: pure FIFO, regardless of the
        # schedule/cancel interleaving around them.
        queue = CalendarQueue()
        order = []
        tokens = {}
        for index, (op, _delay, pick) in enumerate(steps):
            if op >= 0.25 or not tokens:
                tokens[index] = queue.push(queue.now, index)
                order.append(index)
            else:
                victim = sorted(tokens)[pick % len(tokens)]
                if queue.cancel(tokens.pop(victim)):
                    order.remove(victim)
        popped = [item for _when, item in _drain_both(queue, HeapReference())[0]]
        assert popped == order


class TestContractEdges:
    def test_past_scheduling_rejected(self):
        queue = CalendarQueue()
        queue.push(5.0, "a")
        queue.pop()
        with pytest.raises(ValueError, match="cannot schedule into the past"):
            queue.push(4.0, "b")
        with pytest.raises(ValueError, match="cannot schedule into the past"):
            queue.bulk_push([(4.0, "b")])

    def test_cancel_after_pop_is_noop(self):
        # Regression: cancelling a popped token used to report success
        # and drive the live count negative.
        queue = CalendarQueue()
        token = queue.push(0.0, "x")
        queue.push(1.0, "y")
        assert queue.pop() == (0.0, "x")
        assert queue.cancel(token) is False
        assert len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()

    def test_peek_skips_cancelled(self):
        queue = CalendarQueue()
        token = queue.push(2.0, "dead")
        queue.push(7.0, "live")
        assert queue.peek() == 2.0
        queue.cancel(token)
        assert queue.peek() == 7.0

    def test_heap_entry_precedes_bucket_at_same_instant(self):
        # The ordering keystone: a future entry reached by the clock was
        # scheduled earlier than any entry bucketed *at* that instant.
        queue = CalendarQueue()
        queue.push(1.0, "heap-born")  # scheduled first, lands in the heap
        queue.push(0.0, "bucket-born")
        assert queue.pop() == (0.0, "bucket-born")
        queue.push(1.0, "heap-later")  # still future at now == 0
        queue.push(queue.now, "bucketed-now")
        got = [queue.pop() for _ in range(3)]
        assert got == [
            (0.0, "bucketed-now"),
            (1.0, "heap-born"),  # smaller seq than heap-later
            (1.0, "heap-later"),
        ]
