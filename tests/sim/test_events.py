"""Unit tests for the event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Simulator, Timeout


@pytest.fixture()
def sim():
    return Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event("e")
        assert not event.triggered
        assert not event.processed

    def test_succeed_sets_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_double_succeed_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_then_succeed_raises(self, sim):
        event = sim.event()
        event.defused = True
        event.fail(ValueError("boom"))
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception_instance(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_records_exception(self, sim):
        event = sim.event()
        event.defused = True
        boom = ValueError("boom")
        event.fail(boom)
        assert not event.ok
        assert event.exception is boom
        with pytest.raises(ValueError):
            _ = event.value

    def test_callbacks_run_at_dispatch_not_trigger(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(sim.now))
        event.succeed()
        assert seen == []  # not yet dispatched
        sim.run()
        assert seen == [0.0]

    def test_late_callback_runs_immediately(self, sim):
        event = sim.event()
        event.succeed("x")
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_unhandled_failure_surfaces_in_run(self, sim):
        event = sim.event()
        event.fail(RuntimeError("nobody listening"))
        with pytest.raises(RuntimeError, match="nobody listening"):
            sim.run()

    def test_defused_failure_passes_silently(self, sim):
        event = sim.event()
        event.defused = True
        event.fail(RuntimeError("ignored"))
        sim.run()  # does not raise


class TestTimeout:
    def test_fires_after_delay(self, sim):
        fired = []
        sim.timeout(2.5).add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_carries_value(self, sim):
        timeout = sim.timeout(1.0, value="done")
        sim.run()
        assert timeout.value == "done"

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-0.1)

    def test_zero_delay_fires_now(self, sim):
        fired = []
        sim.timeout(0.0).add_callback(lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [0.0]

    def test_is_an_event(self, sim):
        assert isinstance(sim.timeout(1.0), Event)
        assert isinstance(sim.timeout(1.0), Timeout)


class TestAllOf:
    def test_fires_when_all_fire(self, sim):
        timeouts = [sim.timeout(t, value=t) for t in (3.0, 1.0, 2.0)]
        combined = AllOf(sim, timeouts)
        fired = []
        combined.add_callback(lambda e: fired.append((sim.now, e.value)))
        sim.run()
        assert fired == [(3.0, [3.0, 1.0, 2.0])]  # values in construction order

    def test_empty_fires_immediately(self, sim):
        combined = AllOf(sim, [])
        sim.run()
        assert combined.triggered
        assert combined.value == []

    def test_child_failure_fails_condition(self, sim):
        good = sim.timeout(1.0)
        bad = sim.event()
        combined = AllOf(sim, [good, bad])
        combined.defused = True
        bad.fail(ValueError("child failed"))
        sim.run()
        assert not combined.ok
        assert isinstance(combined.exception, ValueError)

    def test_mixed_simulators_rejected(self, sim):
        other = Simulator()
        with pytest.raises(ValueError):
            AllOf(sim, [sim.timeout(1.0), other.timeout(1.0)])


class TestAnyOf:
    def test_fires_on_first(self, sim):
        combined = AnyOf(sim, [sim.timeout(5.0, value="slow"), sim.timeout(1.0, value="fast")])
        fired = []
        combined.add_callback(lambda e: fired.append((sim.now, e.value)))
        sim.run()
        assert fired == [(1.0, "fast")]

    def test_only_fires_once(self, sim):
        combined = AnyOf(sim, [sim.timeout(1.0), sim.timeout(2.0)])
        count = []
        combined.add_callback(lambda e: count.append(1))
        sim.run()
        assert len(count) == 1

    def test_first_failure_fails_condition(self, sim):
        bad = sim.event()
        combined = AnyOf(sim, [bad, sim.timeout(10.0)])
        combined.defused = True
        bad.fail(ValueError("first"))
        sim.run()
        assert not combined.ok
