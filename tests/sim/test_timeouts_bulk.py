"""Regression tests for ``Simulator.timeouts`` (the bulk scheduling path).

The bulk path appends a whole batch and re-heapifies once instead of
paying per-entry ``heappush``.  Three properties pinned here were each
broken (or nearly broken) at some point:

* zero-delay entries must land in the current-instant *bucket* — putting
  them in the heap hands them sequence numbers larger than existing
  bucket entries while the pop rule drains due heap entries first,
  inverting FIFO for simultaneous timestamps;
* sequence numbers must stay monotonic with singleton scheduling across
  interleaved batches, including after a partial drain;
* a bad delay anywhere in the batch must leave the simulator completely
  untouched — no sequence numbers consumed, nothing scheduled.
"""

import pytest

from repro.sim import Simulator


def _record(log, label):
    return lambda event: log.append(label)


class TestZeroDelayBucketFifo:
    def test_zero_delay_batch_respects_existing_bucket_order(self):
        # An already-triggered (bucketed) event must dispatch before
        # zero-delay bulk timeouts created after it.
        sim = Simulator()
        log = []
        first = sim.event(name="pre-existing")
        first.succeed()
        first.add_callback(_record(log, "pre-existing"))
        for index, timeout in enumerate(sim.timeouts([0.0, 0.0, 0.0])):
            timeout.add_callback(_record(log, f"bulk-{index}"))
        sim.run()
        assert log == ["pre-existing", "bulk-0", "bulk-1", "bulk-2"]

    def test_mixed_batch_splits_bucket_and_heap(self):
        sim = Simulator()
        log = []
        labels = ["now-a", "future", "now-b"]
        for label, timeout in zip(labels, sim.timeouts([0.0, 1.0, 0.0])):
            timeout.add_callback(_record(log, label))
        sim.run()
        assert log == ["now-a", "now-b", "future"]
        assert sim.now == 1.0

    def test_bulk_zero_delay_vs_singleton_equivalent_order(self):
        def run(bulk):
            sim = Simulator()
            log = []
            if bulk:
                batch = sim.timeouts([0.0, 0.0])
            else:
                batch = [sim.timeout(0.0), sim.timeout(0.0)]
            for index, timeout in enumerate(batch):
                timeout.add_callback(_record(log, index))
            late = sim.timeout(0.0)
            late.add_callback(_record(log, "late"))
            sim.run()
            return log

        assert run(bulk=True) == run(bulk=False)


class TestSequenceMonotonicity:
    def test_batches_interleave_with_singletons_in_creation_order(self):
        # Same fire time everywhere: dispatch order is exactly creation
        # order only if batch sequence numbers continue the global counter.
        sim = Simulator()
        log = []
        sim.timeout(2.0).add_callback(_record(log, "single-early"))
        for index, timeout in enumerate(sim.timeouts([2.0, 2.0])):
            timeout.add_callback(_record(log, f"batch1-{index}"))
        sim.timeout(2.0).add_callback(_record(log, "single-mid"))
        for index, timeout in enumerate(sim.timeouts([2.0, 2.0])):
            timeout.add_callback(_record(log, f"batch2-{index}"))
        sim.run()
        assert log == [
            "single-early", "batch1-0", "batch1-1",
            "single-mid", "batch2-0", "batch2-1",
        ]

    def test_monotonic_across_partial_drain(self):
        # Regression: the bulk path once published sequence numbers from a
        # stale snapshot of the counter; after draining part of the heap a
        # later batch could collide with (or precede) singles created
        # after it.
        sim = Simulator()
        log = []
        for index, timeout in enumerate(sim.timeouts([1.0, 3.0])):
            timeout.add_callback(_record(log, f"first-{index}"))
        sim.run(until=2.0)  # drains the 1.0 entry only
        assert log == ["first-0"]
        sim.timeout(1.0).add_callback(_record(log, "single"))  # fires at 3.0
        for index, timeout in enumerate(sim.timeouts([1.0, 1.0])):
            timeout.add_callback(_record(log, f"second-{index}"))
        sim.run()
        assert log == [
            "first-0", "first-1", "single", "second-0", "second-1",
        ]


class TestExceptionSafety:
    def test_bad_delay_consumes_nothing(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="timeout delay must be >= 0"):
            sim.timeouts([1.0, 2.0, -0.5, 3.0])
        # Nothing was published: the next singleton fires alone, and a
        # full run leaves the clock where that singleton put it.
        log = []
        sim.timeout(1.0).add_callback(_record(log, "only"))
        sim.run()
        assert log == ["only"]
        assert sim.now == 1.0

    def test_bad_delay_preserves_sequence_alignment(self):
        # The failed batch must not have consumed sequence numbers: two
        # same-time events created around the failure still dispatch in
        # creation order (they would anyway), and crucially the failed
        # call leaves no orphaned heap entries to fire later.
        sim = Simulator()
        log = []
        sim.timeout(1.0).add_callback(_record(log, "before"))
        with pytest.raises(ValueError):
            sim.timeouts([0.0, float("-inf")])
        sim.timeout(1.0).add_callback(_record(log, "after"))
        sim.run()
        assert log == ["before", "after"]
        assert sim.now == 1.0
