"""Tests for trace transformations and workload fitting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import IoKind
from repro.traces import BurstyWorkloadGenerator, Trace, TraceRecord, make_trace
from repro.traces.analysis import analyze, find_bursts
from repro.traces.fit import MIN_FIT_RECORDS, _top_decile, fit_workload
from repro.traces.tools import clip, merge, remap_addresses, scale_gaps, time_scale


def bursty_trace():
    records = []
    for burst in range(4):
        base = burst * 5.0
        for i in range(5):
            records.append(TraceRecord(base + i * 0.01, IoKind.WRITE, (burst * 40 + i * 8) % 4000, 8))
    return Trace("source", records, duration_s=20.0)


class TestTimeScale:
    def test_stretches_everything(self):
        scaled = time_scale(bursty_trace(), 2.0)
        assert scaled.duration_s == 40.0
        assert scaled[1].time_s == pytest.approx(0.02)
        assert len(scaled) == len(bursty_trace())

    def test_validation(self):
        with pytest.raises(ValueError):
            time_scale(bursty_trace(), 0.0)


class TestScaleGaps:
    def test_preserves_burst_timing(self):
        scaled = scale_gaps(bursty_trace(), 10.0, gap_threshold_s=0.1)
        # Intra-burst spacing unchanged:
        assert scaled[1].time_s - scaled[0].time_s == pytest.approx(0.01)
        # Inter-burst gap multiplied:
        analysis = find_bursts(scaled, gap_threshold_s=0.1)
        assert analysis.idle_gaps.mean == pytest.approx(10.0 * (5.0 - 0.04), rel=0.01)

    def test_compression_keeps_order(self):
        compressed = scale_gaps(bursty_trace(), 0.1)
        times = [record.time_s for record in compressed]
        assert times == sorted(times)
        assert compressed.duration_s < bursty_trace().duration_s

    def test_identity(self):
        same = scale_gaps(bursty_trace(), 1.0)
        assert [r.time_s for r in same] == [r.time_s for r in bursty_trace()]


class TestClip:
    def test_window_rebased(self):
        clipped = clip(bursty_trace(), 5.0, 10.0)
        assert clipped.duration_s == 5.0
        assert len(clipped) == 5  # one burst
        assert clipped[0].time_s == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            clip(bursty_trace(), 5.0, 5.0)


class TestRemap:
    def test_addresses_fit_new_space(self):
        remapped = remap_addresses(bursty_trace(), address_space_sectors=256)
        for record in remapped:
            assert record.offset_sectors + record.nsectors <= 256
            assert record.offset_sectors % 8 == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            remap_addresses(bursty_trace(), address_space_sectors=4)


class TestMerge:
    def test_interleaves_by_time(self):
        a = Trace("a", [TraceRecord(0.0, IoKind.READ, 0, 8), TraceRecord(2.0, IoKind.READ, 0, 8)])
        b = Trace("b", [TraceRecord(1.0, IoKind.WRITE, 8, 8)])
        merged = merge([a, b])
        assert [record.time_s for record in merged] == [0.0, 1.0, 2.0]
        assert merged.duration_s == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            merge([])


class TestFit:
    def test_needs_enough_requests(self):
        tiny = Trace("tiny", [TraceRecord(0.0, IoKind.READ, 0, 8)])
        with pytest.raises(ValueError):
            fit_workload(tiny)

    def test_empty_trace_raises_clear_error(self):
        empty = Trace("empty", [], duration_s=1.0)
        with pytest.raises(ValueError, match=str(MIN_FIT_RECORDS)):
            fit_workload(empty)

    def test_single_record_names_minimum_and_count(self):
        single = Trace("single", [TraceRecord(0.0, IoKind.WRITE, 0, 8)])
        with pytest.raises(ValueError, match=f"at least {MIN_FIT_RECORDS}.*got 1"):
            fit_workload(single)

    def test_below_minimum_boundary(self):
        records = [
            TraceRecord(i * 0.01, IoKind.WRITE, i * 8, 8)
            for i in range(MIN_FIT_RECORDS - 1)
        ]
        with pytest.raises(ValueError):
            fit_workload(Trace("three", records))
        records.append(
            TraceRecord((MIN_FIT_RECORDS - 1) * 0.01, IoKind.WRITE, 64, 8)
        )
        params = fit_workload(Trace("four", records))
        assert params.write_fraction == 1.0

    def test_top_decile_empty_safe(self):
        assert _top_decile([]) == 0
        assert _top_decile([5]) == 5
        assert _top_decile(sorted(range(20), reverse=True)) == 19 + 18

    def test_recovers_basic_statistics(self):
        params = fit_workload(bursty_trace(), gap_threshold_s=0.1)
        assert params.write_fraction == 1.0
        assert params.requests_per_burst_mean == pytest.approx(5.0)
        assert params.idle_gap_mean_s == pytest.approx(5.0 - 0.04, rel=0.02)
        assert params.small_size_sectors == 8

    @pytest.mark.parametrize("workload", ["snake", "cello-news"])
    def test_roundtrip_preserves_character(self, workload):
        """generate → fit → regenerate: the key statistics survive."""
        source = make_trace(workload, duration_s=120.0, seed=11)
        params = fit_workload(source, address_space_sectors=2_000_000)
        refit = BurstyWorkloadGenerator(params, seed=12).generate()
        original = analyze(source)
        synthetic = analyze(refit)
        assert synthetic.write_fraction == pytest.approx(original.write_fraction, abs=0.1)
        assert synthetic.mean_iops == pytest.approx(original.mean_iops, rel=0.6)
        assert synthetic.bursts.idle_gaps.mean == pytest.approx(
            original.bursts.idle_gaps.mean, rel=0.6
        )

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_fit_always_yields_valid_params(self, seed):
        source = make_trace("AS400-2", duration_s=30.0, seed=seed)
        if len(source) < 4:
            return
        params = fit_workload(source)
        # Constructing BurstyWorkloadParams validates every field; being
        # able to generate from them is the real assertion:
        trace = BurstyWorkloadGenerator(params, seed=1).generate()
        assert trace.duration_s == params.duration_s
