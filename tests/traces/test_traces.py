"""Tests for trace records, CSV I/O, and the synthetic generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk import IoKind
from repro.traces import (
    BurstyWorkloadGenerator,
    BurstyWorkloadParams,
    CATALOG,
    Trace,
    TraceRecord,
    make_trace,
    read_trace_csv,
    workload_names,
    write_trace_csv,
)

SPACE = 2_000_000  # sectors


def simple_params(**overrides):
    defaults = dict(
        name="test",
        duration_s=30.0,
        address_space_sectors=SPACE,
        write_fraction=0.6,
        requests_per_burst_mean=8,
        within_burst_gap_s=0.01,
        idle_gap_mean_s=0.5,
        idle_gap_sigma=1.2,
    )
    defaults.update(overrides)
    return BurstyWorkloadParams(**defaults)


class TestRecords:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(-1.0, IoKind.READ, 0, 1)
        with pytest.raises(ValueError):
            TraceRecord(0.0, IoKind.READ, -1, 1)
        with pytest.raises(ValueError):
            TraceRecord(0.0, IoKind.READ, 0, 0)

    def test_trace_must_be_time_ordered(self):
        records = [
            TraceRecord(1.0, IoKind.READ, 0, 8),
            TraceRecord(0.5, IoKind.READ, 8, 8),
        ]
        with pytest.raises(ValueError):
            Trace("bad", records)

    def test_summary_statistics(self):
        records = [
            TraceRecord(0.0, IoKind.WRITE, 0, 8),
            TraceRecord(1.0, IoKind.READ, 8, 16),
            TraceRecord(5.0, IoKind.WRITE, 0, 8),
        ]
        trace = Trace("t", records, duration_s=10.0)
        assert trace.write_fraction == pytest.approx(2 / 3)
        assert trace.total_bytes == 32 * 512
        assert trace.mean_iops == pytest.approx(0.3)
        assert trace.idle_gaps(threshold_s=2.0) == [4.0]


class TestCsvRoundTrip:
    def test_roundtrip(self, tmp_path):
        trace = make_trace("snake", duration_s=5.0, address_space_sectors=SPACE, seed=7)
        path = tmp_path / "snake.csv"
        write_trace_csv(trace, path)
        loaded = read_trace_csv(path)
        assert loaded.name == "snake"
        assert len(loaded) == len(trace)
        for original, reloaded in zip(trace, loaded):
            assert reloaded.kind == original.kind
            assert reloaded.offset_sectors == original.offset_sectors
            assert reloaded.nsectors == original.nsectors
            assert reloaded.sync == original.sync
            assert reloaded.time_s == pytest.approx(original.time_s, abs=1e-6)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("nope\n")
        with pytest.raises(ValueError):
            read_trace_csv(path)

    def test_bad_record_reported_with_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,op,offset_sectors,nsectors,sync\n0.0,X,0,8,0\n")
        with pytest.raises(ValueError, match=":2"):
            read_trace_csv(path)


class TestGenerator:
    def test_deterministic_for_seed(self):
        a = BurstyWorkloadGenerator(simple_params(), seed=1).generate()
        b = BurstyWorkloadGenerator(simple_params(), seed=1).generate()
        assert len(a) == len(b)
        assert all(x == y for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = BurstyWorkloadGenerator(simple_params(), seed=1).generate()
        b = BurstyWorkloadGenerator(simple_params(), seed=2).generate()
        assert any(x != y for x, y in zip(a, b))

    def test_respects_duration(self):
        trace = BurstyWorkloadGenerator(simple_params(duration_s=10.0), seed=3).generate()
        assert trace.duration_s == 10.0
        assert all(record.time_s < 10.0 for record in trace)

    def test_addresses_in_range_and_aligned(self):
        trace = BurstyWorkloadGenerator(simple_params(), seed=4).generate()
        for record in trace:
            assert 0 <= record.offset_sectors
            assert record.offset_sectors + record.nsectors <= SPACE
            assert record.offset_sectors % record.nsectors == 0

    def test_write_fraction_close_to_target(self):
        trace = BurstyWorkloadGenerator(simple_params(duration_s=120.0), seed=5).generate()
        assert len(trace) > 200
        assert trace.write_fraction == pytest.approx(0.6, abs=0.08)

    def test_burstiness_produces_long_gaps(self):
        """Bursty workloads must have gaps well above the 100 ms idle threshold."""
        trace = BurstyWorkloadGenerator(simple_params(duration_s=60.0), seed=6).generate()
        long_gaps = trace.idle_gaps(threshold_s=0.1)
        assert len(long_gaps) > 10

    def test_validation(self):
        with pytest.raises(ValueError):
            simple_params(write_fraction=1.5)
        with pytest.raises(ValueError):
            simple_params(duration_s=0)
        with pytest.raises(ValueError):
            simple_params(requests_per_burst_mean=0.5)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_any_seed_yields_valid_trace(self, seed):
        trace = BurstyWorkloadGenerator(simple_params(duration_s=5.0), seed=seed).generate()
        previous = 0.0
        for record in trace:
            assert record.time_s >= previous
            previous = record.time_s
            assert record.offset_sectors + record.nsectors <= SPACE


class TestCatalog:
    def test_ten_workloads(self):
        # hplajw, snake, cello x2, netware, ATT, AS400 x4
        assert len(workload_names()) == 10
        assert workload_names()[0] == "hplajw"

    def test_all_specs_generate(self):
        for name in workload_names():
            trace = make_trace(name, duration_s=5.0, address_space_sectors=SPACE, seed=1)
            assert len(trace) >= 1, name

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_trace("nosuch")

    def test_load_ordering_matches_descriptions(self):
        """netware/ATT drive the array much harder than hplajw."""
        rates = {
            name: CATALOG[name].params(duration_s=1.0, address_space_sectors=SPACE).approximate_iops
            for name in workload_names()
        }
        assert rates["netware"] > 4 * rates["hplajw"]
        assert rates["ATT"] > 4 * rates["hplajw"]
        assert rates["AS400-1"] > rates["AS400-4"]

    def test_heavy_workloads_are_write_heavy(self):
        assert CATALOG["netware"].write_fraction >= 0.8
        assert CATALOG["cello-news"].write_fraction >= 0.75

    def test_same_seed_same_trace_across_calls(self):
        a = make_trace("ATT", duration_s=5.0, address_space_sectors=SPACE, seed=9)
        b = make_trace("ATT", duration_s=5.0, address_space_sectors=SPACE, seed=9)
        assert len(a) == len(b)
        assert all(x == y for x, y in zip(a, b))

    def test_different_workloads_different_streams(self):
        a = make_trace("AS400-2", duration_s=5.0, address_space_sectors=SPACE, seed=9)
        b = make_trace("AS400-3", duration_s=5.0, address_space_sectors=SPACE, seed=9)
        assert [r.time_s for r in a] != [r.time_s for r in b]
