"""Tests for the compact binary trace format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import make_trace, read_trace_binary, write_trace_binary


class TestRoundTrip:
    def test_exact_roundtrip(self, tmp_path):
        trace = make_trace("cello-news", duration_s=10.0, seed=5)
        path = tmp_path / "t.bin"
        write_trace_binary(trace, path)
        loaded = read_trace_binary(path, name=trace.name)
        assert len(loaded) == len(trace)
        for original, reloaded in zip(trace, loaded):
            assert reloaded.time_s == original.time_s  # f64: bit-exact
            assert reloaded.kind == original.kind
            assert reloaded.offset_sectors == original.offset_sectors
            assert reloaded.nsectors == original.nsectors
            assert reloaded.sync == original.sync

    def test_empty_trace(self, tmp_path):
        from repro.traces import Trace

        path = tmp_path / "empty.bin"
        write_trace_binary(Trace("empty", []), path)
        assert len(read_trace_binary(path)) == 0

    def test_size_is_exactly_header_plus_records(self, tmp_path):
        trace = make_trace("ATT", duration_s=20.0, seed=5)
        binary_path = tmp_path / "t.bin"
        write_trace_binary(trace, binary_path)
        assert binary_path.stat().st_size == 16 + 24 * len(trace)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_any_catalog_trace_roundtrips(self, seed, tmp_path_factory):
        trace = make_trace("snake", duration_s=5.0, seed=seed)
        path = tmp_path_factory.mktemp("bin") / "t.bin"
        write_trace_binary(trace, path)
        loaded = read_trace_binary(path)
        assert [r.offset_sectors for r in loaded] == [r.offset_sectors for r in trace]


class TestValidation:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOPE" + bytes(12))
        with pytest.raises(ValueError, match="magic"):
            read_trace_binary(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"AF")
        with pytest.raises(ValueError, match="truncated header"):
            read_trace_binary(path)

    def test_truncated_records(self, tmp_path):
        trace = make_trace("AS400-4", duration_s=5.0, seed=1)
        path = tmp_path / "t.bin"
        write_trace_binary(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(ValueError, match="truncated records"):
            read_trace_binary(path)

    def test_unsupported_version(self, tmp_path):
        import struct

        path = tmp_path / "future.bin"
        path.write_bytes(struct.pack("<4sIQ", b"AFRD", 99, 0))
        with pytest.raises(ValueError, match="version"):
            read_trace_binary(path)
