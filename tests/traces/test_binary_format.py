"""Tests for the compact binary trace format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import make_trace, read_trace_binary, write_trace_binary


class TestRoundTrip:
    def test_exact_roundtrip(self, tmp_path):
        trace = make_trace("cello-news", duration_s=10.0, seed=5)
        path = tmp_path / "t.bin"
        write_trace_binary(trace, path)
        loaded = read_trace_binary(path, name=trace.name)
        assert len(loaded) == len(trace)
        for original, reloaded in zip(trace, loaded):
            assert reloaded.time_s == original.time_s  # f64: bit-exact
            assert reloaded.kind == original.kind
            assert reloaded.offset_sectors == original.offset_sectors
            assert reloaded.nsectors == original.nsectors
            assert reloaded.sync == original.sync

    def test_empty_trace(self, tmp_path):
        from repro.traces import Trace

        path = tmp_path / "empty.bin"
        write_trace_binary(Trace("empty", []), path)
        assert len(read_trace_binary(path)) == 0

    def test_size_is_exactly_header_plus_records(self, tmp_path):
        trace = make_trace("ATT", duration_s=20.0, seed=5)
        binary_path = tmp_path / "t.bin"
        write_trace_binary(trace, binary_path)
        assert binary_path.stat().st_size == 16 + 24 * len(trace)

    @given(seed=st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_any_catalog_trace_roundtrips(self, seed, tmp_path_factory):
        trace = make_trace("snake", duration_s=5.0, seed=seed)
        path = tmp_path_factory.mktemp("bin") / "t.bin"
        write_trace_binary(trace, path)
        loaded = read_trace_binary(path)
        assert [r.offset_sectors for r in loaded] == [r.offset_sectors for r in trace]


class TestValidation:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOPE" + bytes(12))
        with pytest.raises(ValueError, match="magic"):
            read_trace_binary(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"AF")
        with pytest.raises(ValueError, match="truncated header"):
            read_trace_binary(path)

    def test_truncated_records(self, tmp_path):
        trace = make_trace("AS400-4", duration_s=5.0, seed=1)
        path = tmp_path / "t.bin"
        write_trace_binary(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(ValueError, match="truncated records"):
            read_trace_binary(path)

    def test_unsupported_version(self, tmp_path):
        import struct

        path = tmp_path / "future.bin"
        path.write_bytes(struct.pack("<4sIQ", b"AFRD", 99, 0))
        with pytest.raises(ValueError, match="version"):
            read_trace_binary(path)


class TestEdgeRecords:
    """Edge records: hand-crafted files must fail loudly, not with a
    struct error deep in the parser, and flags must survive round-trips."""

    def _binary(self, tmp_path, records):
        from repro.traces.trace_io import _BIN_HEADER, _BIN_RECORD

        path = tmp_path / "edge.bin"
        payload = _BIN_HEADER.pack(b"AFRD", 1, len(records))
        for time_s, offset, nsectors, flags in records:
            payload += _BIN_RECORD.pack(time_s, offset, nsectors, flags, 0)
        path.write_bytes(payload)
        return path

    def test_zero_length_io_rejected(self, tmp_path):
        path = self._binary(tmp_path, [(0.0, 0, 0, 0x1)])
        with pytest.raises(ValueError, match="nsectors"):
            read_trace_binary(path)

    def test_zero_length_io_rejected_in_csv(self, tmp_path):
        path = tmp_path / "zero.csv"
        path.write_text(
            "time_s,op,offset_sectors,nsectors,sync\n0.000000,W,0,0,0\n"
        )
        from repro.traces import read_trace_csv

        with pytest.raises(ValueError, match="bad record"):
            read_trace_csv(path)

    def test_sync_flag_preserved_both_formats(self, tmp_path):
        from repro.disk import IoKind
        from repro.traces import Trace, TraceRecord, read_trace_csv, write_trace_csv

        records = [
            TraceRecord(0.0, IoKind.WRITE, 0, 8, sync=True),
            TraceRecord(0.5, IoKind.WRITE, 8, 8, sync=False),
            TraceRecord(1.0, IoKind.READ, 16, 8, sync=True),
        ]
        trace = Trace("sync", records)
        bin_path = tmp_path / "sync.bin"
        csv_path = tmp_path / "sync.csv"
        write_trace_binary(trace, bin_path)
        write_trace_csv(trace, csv_path)
        for loaded in (read_trace_binary(bin_path), read_trace_csv(csv_path)):
            assert [r.sync for r in loaded] == [True, False, True]
            assert [r.kind for r in loaded] == [r.kind for r in records]

    def test_non_monotonic_timestamps_rejected(self, tmp_path):
        path = self._binary(tmp_path, [(1.0, 0, 8, 0x1), (0.5, 8, 8, 0x1)])
        with pytest.raises(ValueError, match="time-ordered"):
            read_trace_binary(path)

    def test_truncated_mid_record_names_counts(self, tmp_path):
        path = self._binary(tmp_path, [(0.0, 0, 8, 0x1), (1.0, 8, 8, 0x3)])
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        with pytest.raises(ValueError, match="truncated records"):
            read_trace_binary(path)
