"""Tests for trace characterisation."""

import pytest

from repro.disk import IoKind
from repro.traces import Trace, TraceRecord, make_trace
from repro.traces.analysis import analyze, compare, find_bursts, sequential_fraction


def burst_trace():
    """Two clean bursts of 3 requests, 2 s apart."""
    records = []
    for burst_start in (0.0, 2.0):
        for i in range(3):
            records.append(
                TraceRecord(burst_start + i * 0.01, IoKind.WRITE, i * 8, 8)
            )
    return Trace("bursts", records, duration_s=3.0)


class TestFindBursts:
    def test_counts_bursts_and_gaps(self):
        analysis = find_bursts(burst_trace(), gap_threshold_s=0.1)
        assert analysis.n_bursts == 2
        assert analysis.burst_sizes.mean == pytest.approx(3.0)
        assert analysis.idle_gaps.mean == pytest.approx(2.0 - 0.02)

    def test_single_burst(self):
        records = [TraceRecord(i * 0.01, IoKind.READ, 0, 8) for i in range(5)]
        analysis = find_bursts(Trace("one", records), gap_threshold_s=0.1)
        assert analysis.n_bursts == 1
        assert analysis.idle_gaps.mean == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            find_bursts(Trace("empty", []))

    def test_duty_cycle_bounded(self):
        analysis = find_bursts(burst_trace())
        assert 0.0 <= analysis.duty_cycle <= 1.0


class TestSequentialFraction:
    def test_fully_sequential(self):
        records = [TraceRecord(i * 0.01, IoKind.READ, i * 8, 8) for i in range(5)]
        assert sequential_fraction(Trace("seq", records)) == 1.0

    def test_fully_random(self):
        records = [
            TraceRecord(0.0, IoKind.READ, 0, 8),
            TraceRecord(0.1, IoKind.READ, 100, 8),
            TraceRecord(0.2, IoKind.READ, 5000, 8),
        ]
        assert sequential_fraction(Trace("rand", records)) == 0.0

    def test_short_trace(self):
        assert sequential_fraction(Trace("tiny", [TraceRecord(0, IoKind.READ, 0, 8)])) == 0.0


class TestAnalyze:
    def test_report_fields(self):
        report = analyze(burst_trace())
        assert report.name == "bursts"
        assert report.n_requests == 6
        assert report.write_fraction == 1.0
        assert report.footprint_sectors == 24  # 3 distinct 8-sector blocks
        assert len(report.rows()) == 13

    def test_catalog_traces_match_their_descriptions(self):
        """The analyzer confirms the catalog's intent: hplajw idles far
        more than ATT, and ATT drives far more IOPS."""
        hplajw = analyze(make_trace("hplajw", duration_s=60.0, seed=3))
        att = analyze(make_trace("ATT", duration_s=60.0, seed=3))
        assert hplajw.bursts.idle_gaps.mean > 4 * att.bursts.idle_gaps.mean
        assert att.mean_iops > 4 * hplajw.mean_iops
        assert att.write_fraction > 0.6

    def test_compare_returns_one_report_per_trace(self):
        traces = [make_trace(name, duration_s=10.0, seed=1) for name in ("snake", "AS400-2")]
        reports = compare(traces)
        assert [report.name for report in reports] == ["snake", "AS400-2"]
