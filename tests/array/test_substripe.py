"""Tests for the §5 sub-stripe marking refinement (M bits per stripe).

With M bits, a small write dirties only the horizontal slice it touched,
and the background rebuild reads 1/M of each data unit instead of whole
units — cheaper scrubs for the same protection.
"""

import pytest

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind
from repro.policy import BaselineAfraidPolicy
from repro.sim import Simulator


def write(offset, nsectors=2, data=None):
    return ArrayRequest(IoKind.WRITE, offset, nsectors, data=data)


def payload(array, nsectors, seed=1):
    return bytes((seed * 67 + i) % 256 for i in range(nsectors * array.sector_bytes))


def make_array(sim, bits, **kwargs):
    return toy_array(
        sim,
        policy=BaselineAfraidPolicy(),
        stripe_unit_sectors=8,
        bits_per_stripe=bits,
        **kwargs,
    )


class TestMarking:
    def test_small_write_marks_one_sub_unit(self):
        sim = Simulator()
        array = make_array(sim, bits=4, with_functional=False, idle_threshold_s=1e9)
        done = array.submit(write(0, 2))  # rows 0-1 of an 8-sector unit: slice 0
        sim.run_until_triggered(done)
        assert array.marks.marks_of(0) == [0]
        assert array.marks.count == 1

    def test_write_spanning_slices_marks_each(self):
        sim = Simulator()
        array = make_array(sim, bits=4, with_functional=False, idle_threshold_s=1e9)
        done = array.submit(write(1, 4))  # rows 1-4: slices 0,1,2
        sim.run_until_triggered(done)
        assert array.marks.marks_of(0) == [0, 1, 2]

    def test_lag_is_proportional_to_marked_slices(self):
        sim = Simulator()
        array = make_array(sim, bits=4, with_functional=False, idle_threshold_s=1e9)
        done = array.submit(write(0, 2))
        sim.run_until_triggered(done)
        per_slice = array.layout.data_units_per_stripe * array.unit_bytes / 4
        assert array.parity_lag_bytes == pytest.approx(per_slice)


class TestSlicedScrub:
    def test_scrub_reads_only_the_slice(self):
        sim = Simulator()
        coarse = make_array(sim, bits=1, with_functional=False, idle_threshold_s=0.05)
        done = coarse.submit(write(0, 2))
        sim.run_until_triggered(done)
        sim.run(until=sim.now + 1.0)
        coarse_sectors = sum(d.stats.sectors_read for d in coarse.disks)

        sim2 = Simulator()
        fine = make_array(sim2, bits=4, with_functional=False, idle_threshold_s=0.05)
        done = fine.submit(write(0, 2))
        sim2.run_until_triggered(done)
        sim2.run(until=sim2.now + 1.0)
        fine_sectors = sum(d.stats.sectors_read for d in fine.disks)

        assert coarse.dirty_stripe_count == 0
        assert fine.dirty_stripe_count == 0
        # The fine-grained rebuild read ~1/4 of the data the coarse one did.
        assert fine_sectors <= coarse_sectors / 2

    def test_functional_parity_consistent_after_all_slices_scrubbed(self):
        sim = Simulator()
        array = make_array(sim, bits=4, idle_threshold_s=0.05)
        data = payload(array, 8, seed=2)
        done = array.submit(write(0, 8, data=data))  # touches all 4 slices of unit 0
        sim.run_until_triggered(done)
        sim.run(until=sim.now + 2.0)
        assert array.marks.count == 0
        assert array.functional.parity_consistent(0)
        assert array.functional.read(0, 8) == data

    def test_mark_memory_recovery_marks_all_slices(self):
        sim = Simulator()
        array = make_array(sim, bits=2, with_functional=False, ndisks=3)
        array.marks.fail()
        array.recover_mark_memory()
        assert array.marks.count == array.layout.nstripes * 2
        sim.run(until=sim.now + 120.0)
        assert array.marks.count == 0


class TestCommitParitypoint:
    def test_commit_scrubs_touched_stripes_immediately(self):
        sim = Simulator()
        array = toy_array(sim, idle_threshold_s=1e9, with_functional=False)
        done = array.submit(write(0, 4))
        sim.run_until_triggered(done)
        assert array.dirty_stripe_count == 1
        committed = array.commit(0, 4)
        count = sim.run_until_triggered(committed)
        assert count == 1
        assert array.dirty_stripe_count == 0

    def test_commit_of_clean_extent_is_trivial(self):
        sim = Simulator()
        array = toy_array(sim, idle_threshold_s=1e9, with_functional=False)
        committed = array.commit(0, 16)
        sim.run_until_triggered(committed)
        assert array.stats.stripes_scrubbed == 0

    def test_commit_functional_consistency(self):
        sim = Simulator()
        array = toy_array(sim, idle_threshold_s=1e9)
        data = payload(array, 4, seed=3)
        done = array.submit(write(0, 4, data=data))
        sim.run_until_triggered(done)
        assert not array.functional.parity_consistent(0)
        sim.run_until_triggered(array.commit(0, 4))
        assert array.functional.parity_consistent(0)
