"""Tests for the array controller: AFRAID, RAID 5, and RAID 0 behaviour."""

import pytest

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind
from repro.policy import (
    AlwaysRaid5Policy,
    DirtyStripeThresholdPolicy,
    EagerScrubPolicy,
    NeverScrubPolicy,
)
from repro.sim import AllOf, Simulator


def submit_and_run(sim, array, request):
    done = array.submit(request)
    return sim.run_until_triggered(done)


def write(offset, nsectors, data=None):
    return ArrayRequest(IoKind.WRITE, offset, nsectors, data=data)


def read(offset, nsectors):
    return ArrayRequest(IoKind.READ, offset, nsectors)


def payload(array, nsectors, seed=1):
    return bytes((seed * 41 + i) % 256 for i in range(nsectors * array.sector_bytes))


@pytest.fixture()
def sim():
    return Simulator()


class TestValidation:
    def test_out_of_range_request_rejected(self, sim):
        array = toy_array(sim)
        with pytest.raises(ValueError):
            array.submit(read(array.layout.total_data_sectors, 1))

    def test_resubmission_rejected(self, sim):
        array = toy_array(sim)
        request = read(0, 1)
        array.submit(request)
        with pytest.raises(ValueError):
            array.submit(request)

    def test_needs_three_disks(self, sim):
        with pytest.raises(ValueError):
            toy_array(sim, ndisks=2)


class TestAfraidWrites:
    def test_small_write_is_one_disk_io(self, sim):
        """The headline: AFRAID reduces the 4 I/Os of RAID 5 to 1."""
        array = toy_array(sim, with_functional=False)
        submit_and_run(sim, array, write(0, 8))  # half a stripe unit
        assert array.stats.foreground_data_writes == 1
        assert array.stats.preread_ios == 0
        assert array.stats.foreground_parity_writes == 0

    def test_write_marks_stripe_dirty(self, sim):
        array = toy_array(sim, with_functional=False, idle_threshold_s=1e9)
        submit_and_run(sim, array, write(0, 4))
        assert array.dirty_stripe_count == 1
        assert array.parity_lag_bytes == (
            array.layout.data_units_per_stripe * array.unit_bytes
        )

    def test_functional_twin_sees_deferred_write(self, sim):
        array = toy_array(sim, idle_threshold_s=1e9)
        data = payload(array, 4)
        submit_and_run(sim, array, write(0, 4, data=data))
        assert array.functional.read(0, 4) == data
        assert 0 in array.functional.dirty_stripes

    def test_scrubber_runs_in_idle_period(self, sim):
        array = toy_array(sim, idle_threshold_s=0.05)
        submit_and_run(sim, array, write(0, 4, data=payload(array, 4)))
        sim.run(until=sim.now + 1.0)  # give the idle detector time to fire
        assert array.dirty_stripe_count == 0
        assert array.stats.stripes_scrubbed == 1
        assert array.functional.parity_consistent(0)

    def test_scrub_costs_data_reads_plus_parity_write(self, sim):
        array = toy_array(sim, idle_threshold_s=0.05, with_functional=False)
        submit_and_run(sim, array, write(0, 4))
        sim.run(until=sim.now + 1.0)
        assert array.stats.scrub_data_reads == array.layout.data_units_per_stripe
        assert array.stats.scrub_parity_writes == 1

    def test_raid0_policy_never_scrubs(self, sim):
        array = toy_array(sim, policy=NeverScrubPolicy(), idle_threshold_s=0.05, with_functional=False)
        submit_and_run(sim, array, write(0, 4))
        sim.run(until=sim.now + 2.0)
        assert array.dirty_stripe_count == 1
        assert array.stats.stripes_scrubbed == 0


class TestRaid5Writes:
    def test_small_write_is_four_disk_ios(self, sim):
        array = toy_array(sim, policy=AlwaysRaid5Policy(), with_functional=False)
        submit_and_run(sim, array, write(0, 8))
        assert array.stats.preread_ios == 2  # old data + old parity
        assert array.stats.foreground_data_writes == 1
        assert array.stats.foreground_parity_writes == 1

    def test_no_stripe_goes_dirty(self, sim):
        array = toy_array(sim, policy=AlwaysRaid5Policy())
        submit_and_run(sim, array, write(0, 8, data=payload(array, 8)))
        assert array.dirty_stripe_count == 0
        assert array.functional.parity_consistent(0)

    def test_full_stripe_write_skips_prereads(self, sim):
        array = toy_array(sim, policy=AlwaysRaid5Policy(), with_functional=False)
        full = array.layout.stripe_data_sectors
        submit_and_run(sim, array, write(0, full))
        assert array.stats.preread_ios == 0
        assert array.stats.foreground_parity_writes == 1
        assert array.stats.foreground_data_writes == array.layout.data_units_per_stripe

    def test_raid5_slower_than_afraid_for_small_writes(self, sim):
        afraid = toy_array(sim, name="afraid", with_functional=False, idle_threshold_s=1e9)
        t_afraid = submit_and_run(sim, afraid, write(0, 8)).io_time
        raid5 = toy_array(sim, name="raid5", policy=AlwaysRaid5Policy(), with_functional=False)
        t_raid5 = submit_and_run(sim, raid5, write(0, 8)).io_time
        assert t_raid5 > 1.5 * t_afraid

    def test_write_to_dirty_stripe_reconstructs(self, sim):
        """A policy flip mid-debt must not seal stale parity in."""
        array = toy_array(sim, policy=DirtyStripeThresholdPolicy(max_dirty_stripes=1000))
        # First write dirty (AFRAID mode under this policy), then force
        # RAID 5 semantics by writing with an AlwaysRaid5Policy swap.
        submit_and_run(sim, array, write(0, 4, data=payload(array, 4)))
        assert 0 in array.functional.dirty_stripes
        array.policy = AlwaysRaid5Policy()
        array.policy.attach(array)
        submit_and_run(sim, array, write(4, 4, data=payload(array, 4, seed=2)))
        assert array.dirty_stripe_count == 0
        assert array.functional.parity_consistent(0)
        assert array.stats.reconstruct_reads > 0


class TestReads:
    def test_read_hits_disks_then_cache(self, sim):
        array = toy_array(sim, with_functional=False)
        submit_and_run(sim, array, read(0, 8))
        first_reads = array.stats.foreground_data_reads
        assert first_reads >= 1
        result = submit_and_run(sim, array, read(0, 8))
        assert array.stats.foreground_data_reads == first_reads  # cache hit
        assert array.read_cache.stats.hits == 1
        assert result.io_time < 0.001

    def test_read_returns_written_data(self, sim):
        array = toy_array(sim)
        data = payload(array, 8, seed=3)
        submit_and_run(sim, array, write(32, 8, data=data))
        result = submit_and_run(sim, array, read(32, 8))
        assert result.result_data == data

    def test_read_spanning_stripes(self, sim):
        array = toy_array(sim)
        span = array.layout.stripe_data_sectors + 8
        data = payload(array, span, seed=4)
        submit_and_run(sim, array, write(0, span, data=data))
        result = submit_and_run(sim, array, read(0, span))
        assert result.result_data == data


class TestConcurrencyAndScheduling:
    def test_admission_capped_at_ndisks(self, sim):
        array = toy_array(sim, with_functional=False, idle_threshold_s=1e9)
        for i in range(12):
            array.submit(read(i * 64, 32))
        sim.run(until=1e-4)
        assert array.slots.in_use <= array.ndisks

    def test_many_concurrent_requests_complete(self, sim):
        array = toy_array(sim, with_functional=False, idle_threshold_s=1e9)
        events = [array.submit(write(i * 16, 8)) for i in range(20)]
        sim.run_until_triggered(AllOf(sim, events))
        assert array.stats.completed == 20

    def test_io_time_includes_queueing(self, sim):
        array = toy_array(sim, with_functional=False, idle_threshold_s=1e9)
        events = [array.submit(read(i * 128, 64)) for i in range(10)]
        sim.run_until_triggered(AllOf(sim, events))
        times = sorted(array.stats.io_times)
        assert times[-1] > 2 * times[0]  # later requests queued behind earlier


class TestScrubberForeground:
    def test_scrub_preempted_between_stripes_by_new_work(self, sim):
        """Scrubbing stops between stripes when a client request arrives."""
        array = toy_array(sim, idle_threshold_s=0.05, with_functional=False)
        # Dirty many stripes.
        stride = array.layout.stripe_data_sectors
        events = [array.submit(write(stripe * stride, 4)) for stripe in range(10)]
        sim.run_until_triggered(AllOf(sim, events))

        def client_burst():
            # Arrive just as the scrubber gets going.
            yield sim.timeout(0.06)
            yield array.submit(read(0, 4))

        proc = sim.process(client_burst())
        sim.run_until_triggered(proc)
        # Not everything was scrubbed in one go (the burst preempted it) ...
        # but once idle again, the scrubber finishes the debt.
        sim.run(until=sim.now + 5.0)
        assert array.dirty_stripe_count == 0
        assert array.stats.stripes_scrubbed == 10

    def test_eager_policy_scrubs_despite_load(self, sim):
        array = toy_array(sim, policy=EagerScrubPolicy(), idle_threshold_s=1e9, with_functional=False)
        done = array.submit(write(0, 4))
        sim.run_until_triggered(done)
        sim.run(until=sim.now + 1.0)
        assert array.dirty_stripe_count == 0  # scrubbed without any idle declaration

    def test_threshold_policy_bounds_dirty_stripes(self, sim):
        array = toy_array(
            sim,
            policy=DirtyStripeThresholdPolicy(max_dirty_stripes=3),
            idle_threshold_s=1e9,  # idle path disabled: only the force path runs
            with_functional=False,
        )
        stride = array.layout.stripe_data_sectors
        events = [array.submit(write(stripe * stride, 4)) for stripe in range(8)]
        sim.run_until_triggered(AllOf(sim, events))
        sim.run(until=sim.now + 5.0)
        # The forced scrub drained the debt even though idle never fired.
        assert array.dirty_stripe_count == 0


class TestAvailabilityAccounting:
    def test_lag_tracker_integrates_exposure(self, sim):
        array = toy_array(sim, idle_threshold_s=0.05, with_functional=False)
        submit_and_run(sim, array, write(0, 4))
        sim.run(until=sim.now + 1.0)  # scrub happens
        array.finalize()
        tracker = array.lag_tracker
        assert tracker.peak_parity_lag_bytes > 0
        assert 0 < tracker.unprotected_fraction < 1
        assert tracker.current_lag_bytes == 0

    def test_raid5_has_zero_exposure(self, sim):
        array = toy_array(sim, policy=AlwaysRaid5Policy(), with_functional=False)
        submit_and_run(sim, array, write(0, 8))
        array.finalize()
        assert array.lag_tracker.unprotected_fraction == 0.0
        assert array.lag_tracker.mean_parity_lag_bytes == 0.0


class TestMarkMemoryRecovery:
    def test_recovery_marks_everything_then_scrubs(self, sim):
        array = toy_array(sim, ndisks=3, stripe_unit_sectors=4, with_functional=False)
        array.marks.fail()
        array.recover_mark_memory()
        assert array.dirty_stripe_count == array.layout.nstripes
        sim.run(until=sim.now + 60.0)
        assert array.dirty_stripe_count == 0
