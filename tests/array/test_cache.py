"""Tests for the read cache and write staging budget."""

import pytest

from repro.array import ByteBudget, ReadCache
from repro.sim import Simulator


class TestReadCache:
    def test_line_size_validation(self):
        with pytest.raises(ValueError):
            ReadCache(capacity_bytes=1024, line_bytes=100, sector_bytes=512)

    def test_miss_then_hit(self):
        cache = ReadCache(capacity_bytes=8192, line_bytes=4096, sector_bytes=512)
        assert not cache.lookup(0, 8)
        cache.insert(0, 8)
        assert cache.lookup(0, 8)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_partial_residency_is_a_miss(self):
        cache = ReadCache(capacity_bytes=8192, line_bytes=4096, sector_bytes=512)
        cache.insert(0, 8)  # line 0
        assert not cache.lookup(0, 16)  # needs lines 0 and 1

    def test_lru_eviction(self):
        cache = ReadCache(capacity_bytes=8192, line_bytes=4096, sector_bytes=512)  # 2 lines
        cache.insert(0, 8)  # line 0
        cache.insert(8, 8)  # line 1
        cache.insert(16, 8)  # line 2 evicts line 0
        assert not cache.lookup(0, 8)
        assert cache.lookup(8, 8)
        assert cache.lookup(16, 8)

    def test_lookup_refreshes_lru(self):
        cache = ReadCache(capacity_bytes=8192, line_bytes=4096, sector_bytes=512)
        cache.insert(0, 8)
        cache.insert(8, 8)
        cache.lookup(0, 8)  # refresh line 0
        cache.insert(16, 8)  # must evict line 1, not line 0
        assert cache.lookup(0, 8)
        assert not cache.lookup(8, 8)

    def test_zero_capacity_never_hits(self):
        cache = ReadCache(capacity_bytes=0, line_bytes=4096, sector_bytes=512)
        cache.insert(0, 8)
        assert not cache.lookup(0, 8)
        assert cache.stats.hit_rate == 0.0


class TestByteBudget:
    def test_immediate_grant(self):
        sim = Simulator()
        budget = ByteBudget(sim, capacity_bytes=1000)
        grant = budget.reserve(400)
        assert grant.triggered
        assert budget.in_use == 400
        assert budget.available == 600

    def test_backpressure_and_fifo(self):
        sim = Simulator()
        budget = ByteBudget(sim, capacity_bytes=1000)
        order = []

        def writer(tag, nbytes, hold):
            yield budget.reserve(nbytes)
            order.append((tag, sim.now))
            yield sim.timeout(hold)
            budget.release(nbytes)

        sim.process(writer("a", 800, 1.0))
        sim.process(writer("b", 600, 1.0))  # must wait for a
        sim.process(writer("c", 100, 1.0))  # FIFO: waits behind b even though it fits
        sim.run()
        assert [tag for tag, _time in order] == ["a", "b", "c"]
        assert order[1][1] == pytest.approx(1.0)

    def test_oversized_request_clamped(self):
        sim = Simulator()
        budget = ByteBudget(sim, capacity_bytes=1000)
        grant = budget.reserve(5000)  # clamped to 1000, proceeds alone
        assert grant.triggered
        assert budget.in_use == 1000
        budget.release(5000)  # symmetric clamp
        assert budget.in_use == 0

    def test_over_release_rejected(self):
        sim = Simulator()
        budget = ByteBudget(sim, capacity_bytes=1000)
        budget.reserve(100)
        with pytest.raises(RuntimeError):
            budget.release(200)
