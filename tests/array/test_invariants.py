"""Runtime invariants of the array controller, monitored during whole runs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind
from repro.harness import gather
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, MttdlTargetPolicy
from repro.sim import Simulator

workload_strategy = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=600),
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=0.0, max_value=0.1),
    ),
    min_size=1,
    max_size=30,
)


def drive(sim, array, requests):
    events = []

    def client():
        for is_write, offset_basis, nsectors, think in requests:
            offset = offset_basis % (array.layout.total_data_sectors - nsectors)
            if think:
                yield sim.timeout(think)
            kind = IoKind.WRITE if is_write else IoKind.READ
            events.append(array.submit(ArrayRequest(kind, offset, nsectors)))

    proc = sim.process(client())
    sim.run_until_triggered(proc)
    return sim.run_until_triggered(gather(sim, events))


class TestAdmissionInvariant:
    @given(requests=workload_strategy)
    @settings(max_examples=25, deadline=None)
    def test_slots_never_exceed_ndisks(self, requests):
        sim = Simulator()
        array = toy_array(sim, with_functional=False, idle_threshold_s=0.05)
        peak = [0]
        sim.set_trace(lambda _t, _e: peak.__setitem__(0, max(peak[0], array.slots.in_use)))
        outcomes = drive(sim, array, requests)
        assert all(ok for ok, _v in outcomes)
        assert peak[0] <= array.ndisks


class TestAccountingInvariants:
    @given(requests=workload_strategy)
    @settings(max_examples=25, deadline=None)
    def test_stats_conserve_requests(self, requests):
        sim = Simulator()
        array = toy_array(sim, with_functional=False, idle_threshold_s=0.05)
        drive(sim, array, requests)
        n_writes = sum(1 for is_write, *_rest in requests if is_write)
        assert array.stats.writes_completed == n_writes
        assert array.stats.completed == len(requests)
        assert len(array.stats.io_times) == len(requests)
        assert all(time >= 0 for time in array.stats.io_times)

    @given(requests=workload_strategy)
    @settings(max_examples=25, deadline=None)
    def test_lag_bounded_by_capacity(self, requests):
        sim = Simulator()
        array = toy_array(sim, with_functional=False, idle_threshold_s=1e9)
        drive(sim, array, requests)
        assert 0 <= array.dirty_stripe_count <= array.layout.nstripes
        max_lag = array.layout.nstripes * array.layout.data_units_per_stripe * array.unit_bytes
        assert 0 <= array.parity_lag_bytes <= max_lag

    @given(requests=workload_strategy)
    @settings(max_examples=15, deadline=None)
    def test_raid5_never_accumulates_debt(self, requests):
        sim = Simulator()
        array = toy_array(sim, policy=AlwaysRaid5Policy(), with_functional=False)
        drive(sim, array, requests)
        assert array.dirty_stripe_count == 0
        assert array.parity_lag_bytes == 0


class TestPolicyInvariants:
    @given(requests=workload_strategy, target=st.sampled_from([1e6, 1e7]))
    @settings(max_examples=15, deadline=None)
    def test_mttdl_policy_respects_target_on_any_workload(self, requests, target):
        """Over a long enough window the policy always meets its target.

        The window matters: the policy cannot foresee the *first* AFRAID
        write, so a ~0.2 s exposure is unavoidable and dominates very
        short observations (the paper's one-day traces amortise it; we
        measure over >= 60 s).  Targets must also be reachable at all —
        a 1e9-hour target needs exposure fractions no 60 s window can
        demonstrate, which is why it is not in the sample set.
        """
        sim = Simulator()
        policy = MttdlTargetPolicy(target)
        array = toy_array(sim, policy=policy, with_functional=False, idle_threshold_s=0.05)
        drive(sim, array, requests)
        sim.run(until=max(sim.now + 1.0, 60.0))
        array.finalize()
        from repro.availability import TABLE_1, afraid_mttdl

        achieved = afraid_mttdl(
            array.ndisks,
            TABLE_1.mttf_disk_h,
            TABLE_1.mttr_h,
            array.lag_tracker.unprotected_fraction,
        )
        assert achieved >= 0.95 * target

    @given(requests=workload_strategy)
    @settings(max_examples=15, deadline=None)
    def test_afraid_and_raid5_serve_identical_data_counts(self, requests):
        results = {}
        for label, policy_cls in (("afraid", BaselineAfraidPolicy), ("raid5", AlwaysRaid5Policy)):
            sim = Simulator()
            array = toy_array(sim, policy=policy_cls(), with_functional=False)
            drive(sim, array, requests)
            results[label] = array.stats.completed
        assert results["afraid"] == results["raid5"]
