"""Tests for the write-back (single-copy NVRAM) staging mode (§3.4)."""

import pytest

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind
from repro.policy import AlwaysRaid5Policy
from repro.sim import AllOf, Simulator


def write(offset, nsectors=4, data=None):
    return ArrayRequest(IoKind.WRITE, offset, nsectors, data=data)


def payload(array, nsectors, seed=1):
    return bytes((seed * 113 + i) % 256 for i in range(nsectors * array.sector_bytes))


class TestAcknowledgement:
    def test_write_completes_at_nvram_speed(self):
        sim = Simulator()
        array = toy_array(sim, write_policy="writeback", with_functional=False)
        request = write(0, 8)
        done = array.submit(request)
        sim.run_until_triggered(done)
        # Acked in well under a mechanical I/O time.
        assert request.io_time < 0.002
        # The disks have not finished (flush still in flight).
        sim.run(until=sim.now + 1.0)
        assert array.disks[array.layout.data_disk(0, 0)].stats.writes >= 1

    def test_writethrough_is_default_and_slower(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        assert array.write_policy == "writethrough"
        request = write(0, 8)
        sim.run_until_triggered(array.submit(request))
        assert request.io_time > 0.002

    def test_invalid_policy_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            toy_array(sim, write_policy="wild")

    def test_reads_see_flushed_data(self):
        sim = Simulator()
        array = toy_array(sim, write_policy="writeback")
        data = payload(array, 8, seed=3)
        sim.run_until_triggered(array.submit(write(16, 8, data=data)))
        sim.run(until=sim.now + 1.0)  # flush + scrub settle
        result = sim.run_until_triggered(array.submit(ArrayRequest(IoKind.READ, 16, 8)))
        assert result.result_data == data


class TestNvramExposure:
    def test_dirty_bytes_integrated(self):
        sim = Simulator()
        array = toy_array(sim, write_policy="writeback", with_functional=False)
        done = array.submit(write(0, 8))
        sim.run_until_triggered(done)
        sim.run(until=sim.now + 2.0)
        array.finalize()
        tracker = array.nvram_dirty_tracker
        assert tracker.peak_parity_lag_bytes == 8 * array.sector_bytes
        assert tracker.unprotected_time > 0
        assert tracker.current_lag_bytes == 0  # flushed

    def test_writethrough_never_dirties_nvram(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        sim.run_until_triggered(array.submit(write(0, 8)))
        array.finalize()
        assert array.nvram_dirty_tracker.peak_parity_lag_bytes == 0


class TestBackpressure:
    def test_staging_capacity_bounds_ack_rate(self):
        """With a tiny staging area, a burst cannot all ack at NVRAM speed:
        later writes wait for earlier flushes to free space."""
        sim = Simulator()
        array = toy_array(
            sim,
            write_policy="writeback",
            with_functional=False,
            write_staging_bytes=8 * 512,  # room for exactly one 8-sector write
        )
        requests = [write(i * 64, 8) for i in range(4)]
        events = [array.submit(request) for request in requests]
        sim.run_until_triggered(AllOf(sim, events))
        times = sorted(request.io_time for request in requests)
        assert times[0] < 0.002  # first acked instantly
        assert times[-1] > 0.002  # last waited for staging space

    def test_burst_still_all_lands_on_disk(self):
        sim = Simulator()
        array = toy_array(sim, write_policy="writeback", idle_threshold_s=0.05)
        data = {i: payload(array, 4, seed=i) for i in range(6)}
        stride = array.layout.stripe_data_sectors
        events = [array.submit(write(i * stride, 4, data=data[i])) for i in range(6)]
        sim.run_until_triggered(AllOf(sim, events))
        sim.run(until=sim.now + 5.0)
        # Flushed, scrubbed, and byte-exact.
        assert array.dirty_stripe_count == 0
        for i, expected in data.items():
            assert array.functional.read(i * stride, 4) == expected


class TestInteractionWithModes:
    def test_writeback_raid5_keeps_parity_fresh(self):
        sim = Simulator()
        array = toy_array(sim, write_policy="writeback", policy=AlwaysRaid5Policy())
        sim.run_until_triggered(array.submit(write(0, 4, data=payload(array, 4))))
        sim.run(until=sim.now + 1.0)
        assert array.functional.parity_consistent(0)
        assert array.dirty_stripe_count == 0

    def test_idle_detection_waits_for_flush(self):
        """The array is not 'idle' while a flush is outstanding, so the
        scrubber cannot race ahead of the data it must protect."""
        sim = Simulator()
        array = toy_array(sim, write_policy="writeback", with_functional=False,
                          idle_threshold_s=0.05)
        done = array.submit(write(0, 8))
        sim.run_until_triggered(done)  # acked; flush still pending
        assert not array.detector.is_idle
        sim.run(until=sim.now + 2.0)
        assert array.detector.is_idle
