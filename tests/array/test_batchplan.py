"""Batch planner vs the scalar mapping paths.

The planner (:mod:`repro.array.batchplan`) is an optional precomputation:
every plan it attaches must reproduce the scalar ``map_extent`` /
``_group_runs`` / mark-loop geometry element for element, and the extent
prewarm must leave the cache exactly as the scalar walks would have.
"""

from __future__ import annotations

import collections

import pytest

from repro.array.batchplan import (
    MIN_VECTOR_EXTENTS,
    attach_plans,
    warm_extent_cache,
)
from repro.array.factory import build_array
from repro.array.request import ArrayRequest, IoKind
from repro.policy import BaselineAfraidPolicy
from repro.sim import Simulator

Record = collections.namedtuple("Record", "offset_sectors nsectors")


@pytest.fixture
def array():
    return build_array(Simulator(), BaselineAfraidPolicy())


def _mix_extents(layout, count):
    """A spread of extents: unit-aligned, straddling, multi-stripe, tail."""
    unit = layout.stripe_unit_sectors
    sds = layout.stripe_data_sectors
    extents = []
    for index in range(count):
        offset = (index * 7919) % (layout.total_data_sectors - 4 * sds)
        nsectors = 1 + (index * 13) % (2 * unit)
        extents.append((offset, nsectors))
    extents.append((layout.total_data_sectors - 3, 3))  # address-space tail
    return extents


def test_plans_match_scalar_geometry(array):
    layout = array.layout
    requests = [
        ArrayRequest(
            IoKind.WRITE if index % 2 else IoKind.READ, offset, nsectors
        )
        for index, (offset, nsectors) in enumerate(_mix_extents(layout, 40))
    ]
    attach_plans(array, requests)
    for request in requests:
        plan = request.plan
        assert plan is not None
        scalar_runs = layout.map_extent(request.offset_sectors, request.nsectors)
        assert plan.runs == scalar_runs
        # Grouping must mirror _group_runs: insertion order, runs in order.
        groups = array._group_runs(request)
        assert list(plan.stripes) == list(groups)
        assert [(stripe, tuple(runs)) for stripe, runs in groups.items()] == list(
            plan.by_stripe
        )
        if request.is_write:
            expected_marks = [
                (run.stripe, sub_unit)
                for run in scalar_runs
                for sub_unit in (
                    array._sub_units_of(run)
                    if array.marks.bits_per_stripe > 1
                    else (0,)
                )
            ]
            assert list(plan.mark_targets) == expected_marks
        else:
            assert plan.mark_targets == ()


def test_warm_fill_matches_scalar_map_extent(array):
    layout = array.layout
    extents = _mix_extents(layout, max(64, MIN_VECTOR_EXTENTS))
    records = [Record(offset, nsectors) for offset, nsectors in extents]
    filled = warm_extent_cache(layout, records)
    assert filled == len({(r.offset_sectors, r.nsectors) for r in records})
    warmed = dict(layout._extent_cache)
    # A fresh layout mapping the same extents scalar-style must agree.
    reference = build_array(Simulator(), BaselineAfraidPolicy()).layout
    for offset, nsectors in extents:
        assert warmed[(offset, nsectors)] == reference.map_extent(offset, nsectors)


def test_warm_is_idempotent_and_skips_known_keys(array):
    layout = array.layout
    records = [Record(offset, nsectors) for offset, nsectors in _mix_extents(layout, 32)]
    first = warm_extent_cache(layout, records)
    assert first > 0
    assert warm_extent_cache(layout, records) == 0  # everything already cached


def test_warm_skips_out_of_range_extents(array):
    layout = array.layout
    total = layout.total_data_sectors
    records = [Record(total - 1, 8), Record(total + 10, 4)]  # both past the end
    assert warm_extent_cache(layout, records) == 0
    assert (total - 1, 8) not in layout._extent_cache
    with pytest.raises(ValueError):
        layout.map_extent(total - 1, 8)


def test_warm_refuses_cache_overflow(array):
    layout = array.layout
    unit = layout.stripe_unit_sectors
    limit = layout._EXTENT_CACHE_MAX
    records = [
        Record((index % (layout.total_data_sectors // unit - 1)) * unit, 1 + index % unit)
        for index in range(limit + 512)
    ]
    distinct = {(r.offset_sectors, r.nsectors) for r in records}
    if len(distinct) <= limit:  # geometry floor: make the premise explicit
        pytest.skip("mix does not overflow the cache on this geometry")
    assert warm_extent_cache(layout, records) == 0
    assert len(layout._extent_cache) == 0


def test_warm_is_a_noop_without_cache_fields(array):
    class Bare:
        total_data_sectors = 10_000

    assert warm_extent_cache(Bare(), [Record(0, 8)]) == 0
