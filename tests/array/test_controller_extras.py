"""Additional controller behaviours: drain, commit races, degraded guards."""

import pytest

from repro.array import toy_array
from repro.array.request import ArrayRequest
from repro.disk import IoKind
from repro.sim import AllOf, Simulator


def write(offset, nsectors=4):
    return ArrayRequest(IoKind.WRITE, offset, nsectors)


class TestDrain:
    def test_drained_immediately_when_idle(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        done = array.drain()
        assert done.triggered

    def test_drain_fires_after_outstanding_work(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        events = [array.submit(write(i * 32)) for i in range(5)]
        drained = array.drain()
        assert not drained.triggered
        sim.run_until_triggered(drained)
        assert all(event.triggered for event in events)


class TestCommitRaces:
    def test_commit_while_scrubber_active_on_same_stripe(self):
        """The commit waits on the scrubber's barrier rather than racing."""
        sim = Simulator()
        array = toy_array(sim, with_functional=False, idle_threshold_s=0.01)
        done = array.submit(write(0, 4))
        sim.run_until_triggered(done)
        # Let the idle scrubber just begin (threshold 10 ms), then commit.
        sim.run(until=sim.now + 0.011)
        committed = array.commit(0, 4)
        sim.run_until_triggered(committed)
        assert array.dirty_stripe_count == 0
        # The stripe was rebuilt exactly once overall.
        assert array.stats.stripes_scrubbed == 1

    def test_concurrent_commits_of_same_extent(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False, idle_threshold_s=1e9)
        done = array.submit(write(0, 4))
        sim.run_until_triggered(done)
        first = array.commit(0, 4)
        second = array.commit(0, 4)
        sim.run_until_triggered(AllOf(sim, [first, second]))
        assert array.dirty_stripe_count == 0
        assert array.stats.stripes_scrubbed == 1

    def test_write_during_commit_blocks_until_rebuilt(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False, idle_threshold_s=1e9)
        done = array.submit(write(0, 4))
        sim.run_until_triggered(done)
        committed = array.commit(0, 4)
        follow_up = array.submit(write(4, 4))  # same stripe
        sim.run_until_triggered(AllOf(sim, [committed, follow_up]))
        # The follow-up write re-dirties the stripe after the rebuild.
        assert array.dirty_stripe_count == 1


class TestFinalize:
    def test_submit_after_finalize_rejected(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        array.finalize()
        with pytest.raises(RuntimeError):
            array.submit(write(0))

    def test_finalize_idempotent(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False)
        array.finalize()
        array.finalize()  # no error

    def test_late_scrub_does_not_crash_finalized_tracker(self):
        sim = Simulator()
        array = toy_array(sim, with_functional=False, idle_threshold_s=0.05)
        done = array.submit(write(0, 4))
        sim.run_until_triggered(done)
        array.finalize()  # close the books before the scrubber fires
        sim.run(until=sim.now + 1.0)  # scrubber runs; _lag_changed is a no-op
        assert array.dirty_stripe_count == 0
