"""Tests for the afraid-sim command-line interface."""

import pytest

from repro.cli import main
from repro.traces import make_trace, write_trace_csv


class TestWorkloads:
    def test_lists_all_ten(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("hplajw", "snake", "cello-usr", "cello-news", "netware",
                     "ATT", "AS400-1", "AS400-2", "AS400-3", "AS400-4"):
            assert name in out


class TestRun:
    def test_afraid_run(self, capsys):
        assert main(["run", "hplajw", "--duration", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean I/O time" in out
        assert "disk MTTDL" in out

    def test_mttdl_policy_needs_target(self):
        with pytest.raises(SystemExit):
            main(["run", "hplajw", "--policy", "mttdl", "--duration", "5"])

    def test_mttdl_policy_with_target(self, capsys):
        assert main(["run", "hplajw", "--policy", "mttdl", "--mttdl-target", "1e7",
                     "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "MTTDL_1e+07" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nosuch"])

    def test_json_output_parses(self, capsys):
        import json

        assert main(["run", "AS400-4", "--duration", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "AS400-4"
        assert payload["policy"] == "afraid"
        assert payload["mean_io_time_s"] > 0
        assert 0.0 <= payload["unprotected_fraction"] <= 1.0


class TestCompare:
    def test_three_models(self, capsys):
        assert main(["compare", "AS400-4", "--duration", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        for model in ("raid0", "afraid", "raid5"):
            assert model in out
        assert "vs RAID5" in out


class TestAnalyze:
    def test_catalog_workload(self, capsys):
        assert main(["analyze", "snake", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "write fraction" in out
        assert "duty cycle" in out

    def test_csv_file(self, tmp_path, capsys):
        path = tmp_path / "capture.csv"
        write_trace_csv(make_trace("AS400-3", duration_s=10.0, seed=4), path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "capture" in out


class TestAvailability:
    def test_calculator(self, capsys):
        assert main(["availability", "--fraction", "0.1", "--years", "3"]) == 0
        out = capsys.readouterr().out
        assert "RAID 5 disk MTTDL" in out
        assert "P(loss in 3 years)" in out

    def test_reproduces_eq1(self, capsys):
        main(["availability", "--fraction", "0.0"])
        out = capsys.readouterr().out
        assert "4.2e+09 h" in out


class TestStatsFlag:
    def test_run_stats_table(self, capsys):
        assert main(["run", "hplajw", "--duration", "5", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "perf counters" in out
        assert "events_dispatched" in out

    def test_run_stats_json(self, capsys):
        import json

        assert main(["run", "hplajw", "--duration", "5", "--json", "--stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["perf"]["counts"]["events_dispatched"] > 0

    def test_sweep_stats(self, capsys, tmp_path):
        assert main(["sweep", "hplajw", "--targets", "1e7",
                     "--duration", "2", "--cache-dir", str(tmp_path), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "perf counters" in out
        assert "cells_simulated" in out


class TestTrace:
    def test_trace_writes_loadable_chrome_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "hplajw", "--duration", "5", "--seed", "3",
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert "read" in names or "write" in names
        assert "scrub_stripe" in names
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "dirty_stripes" in counters
        assert "parity_lag_bytes" in counters
        out = capsys.readouterr().out
        assert "ui.perfetto.dev" in out

    def test_trace_jsonl_and_histogram_export(self, tmp_path, capsys):
        import json

        hist_path = tmp_path / "hists.json"
        jsonl_path = tmp_path / "trace.jsonl"
        assert main(["trace", "hplajw", "--duration", "5",
                     "--out", str(tmp_path / "t.json"),
                     "--jsonl", str(jsonl_path),
                     "--hist-out", str(hist_path)]) == 0
        payload = json.loads(hist_path.read_text())
        assert payload["workload"] == "hplajw"
        assert "client_write" in payload["histograms"]["classes"]
        first = json.loads(jsonl_path.read_text().splitlines()[0])
        assert first["kind"] in ("span", "instant", "counter")

    def test_unknown_workload_falls_back_to_generic(self, tmp_path, capsys):
        assert main(["trace", "uncompressed", "--duration", "2",
                     "--out", str(tmp_path / "t.json")]) == 0
        err = capsys.readouterr().err
        assert "generic" in err

    def test_percentile_table_printed(self, tmp_path, capsys):
        assert main(["trace", "hplajw", "--duration", "5",
                     "--out", str(tmp_path / "t.json")]) == 0
        out = capsys.readouterr().out
        assert "p95" in out
        assert "client_write" in out


class TestReport:
    def test_report_runs_workload(self, capsys):
        assert main(["report", "hplajw", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "p99" in out
        assert "client_read" in out

    def test_report_from_exported_histograms(self, tmp_path, capsys):
        hist_path = tmp_path / "hists.json"
        assert main(["trace", "hplajw", "--duration", "5",
                     "--out", str(tmp_path / "t.json"),
                     "--hist-out", str(hist_path)]) == 0
        capsys.readouterr()
        assert main(["report", "--from", str(hist_path)]) == 0
        out = capsys.readouterr().out
        assert "client_write" in out

    def test_report_needs_a_source(self):
        with pytest.raises(SystemExit):
            main(["report"])
