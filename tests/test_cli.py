"""Tests for the afraid-sim command-line interface."""

import pytest

from repro.cli import main
from repro.traces import make_trace, write_trace_csv


class TestVersion:
    def test_version_flag_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "afraid-sim" in out
        assert repro.__version__ in out


class TestServiceParsers:
    """The serve/submit/status subcommands parse; end-to-end coverage
    lives in tests/service/ and the CI service smoke job."""

    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 8642)
        assert (args.jobs, args.queue_limit) == (2, 1024)

    def test_submit_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["submit", "hplajw", "--wait"])
        assert args.workloads == ["hplajw"]
        assert args.url == "http://127.0.0.1:8642"
        assert args.wait

    def test_status_accepts_optional_job_id(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["status"]).job_id is None
        assert parser.parse_args(["status", "job-000001"]).job_id == "job-000001"

    def test_serve_rejects_bad_jobs(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--jobs", "0"])


class TestSweepCacheCap:
    def test_cache_max_bytes_prunes_after_sweep(self, tmp_path, capsys):
        assert main(["sweep", "hplajw", "--targets", "1e7", "--duration", "2",
                     "--cache-dir", str(tmp_path), "--cache-max-bytes", "1"]) == 0
        err = capsys.readouterr().err
        assert "cache pruned" in err
        assert list(tmp_path.glob("*.json")) == []

    def test_generous_cap_keeps_entries(self, tmp_path, capsys):
        assert main(["sweep", "hplajw", "--targets", "1e7", "--duration", "2",
                     "--cache-dir", str(tmp_path),
                     "--cache-max-bytes", str(1 << 30)]) == 0
        assert len(list(tmp_path.glob("*.json"))) > 0


class TestWorkloads:
    def test_lists_all_ten(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("hplajw", "snake", "cello-usr", "cello-news", "netware",
                     "ATT", "AS400-1", "AS400-2", "AS400-3", "AS400-4"):
            assert name in out


class TestRun:
    def test_afraid_run(self, capsys):
        assert main(["run", "hplajw", "--duration", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean I/O time" in out
        assert "disk MTTDL" in out

    def test_mttdl_policy_needs_target(self):
        with pytest.raises(SystemExit):
            main(["run", "hplajw", "--policy", "mttdl", "--duration", "5"])

    def test_mttdl_policy_with_target(self, capsys):
        assert main(["run", "hplajw", "--policy", "mttdl", "--mttdl-target", "1e7",
                     "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "MTTDL_1e+07" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nosuch"])

    def test_json_output_parses(self, capsys):
        import json

        assert main(["run", "AS400-4", "--duration", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "AS400-4"
        assert payload["policy"] == "afraid"
        assert payload["mean_io_time_s"] > 0
        assert 0.0 <= payload["unprotected_fraction"] <= 1.0


class TestCompare:
    def test_three_models(self, capsys):
        assert main(["compare", "AS400-4", "--duration", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        for model in ("raid0", "afraid", "raid5"):
            assert model in out
        assert "vs RAID5" in out


class TestAnalyze:
    def test_catalog_workload(self, capsys):
        assert main(["analyze", "snake", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "write fraction" in out
        assert "duty cycle" in out

    def test_csv_file(self, tmp_path, capsys):
        path = tmp_path / "capture.csv"
        write_trace_csv(make_trace("AS400-3", duration_s=10.0, seed=4), path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "capture" in out


class TestProfile:
    def test_hot_path_table(self, capsys):
        assert main(["profile", "hplajw", "--duration", "3", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "profile: hplajw under afraid" in out
        assert "sorted by cumulative" in out
        assert "run_experiment" in out
        # top 5 rows plus the two header lines and the summary line
        assert len(out.strip().splitlines()) == 8

    def test_pstats_dump(self, tmp_path, capsys):
        dump = tmp_path / "replay.pstats"
        assert main([
            "profile", "hplajw", "--duration", "2", "--sort", "tottime",
            "--dump", str(dump),
        ]) == 0
        out = capsys.readouterr().out
        assert "sorted by tottime" in out
        import pstats

        assert pstats.Stats(str(dump)).total_calls > 0


class TestAvailability:
    def test_calculator(self, capsys):
        assert main(["availability", "--fraction", "0.1", "--years", "3"]) == 0
        out = capsys.readouterr().out
        assert "RAID 5 disk MTTDL" in out
        assert "P(loss in 3 years)" in out

    def test_reproduces_eq1(self, capsys):
        main(["availability", "--fraction", "0.0"])
        out = capsys.readouterr().out
        assert "4.2e+09 h" in out


class TestStatsFlag:
    def test_run_stats_table(self, capsys):
        assert main(["run", "hplajw", "--duration", "5", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "perf counters" in out
        assert "events_dispatched" in out

    def test_run_stats_json(self, capsys):
        import json

        assert main(["run", "hplajw", "--duration", "5", "--json", "--stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["perf"]["counts"]["events_dispatched"] > 0

    def test_sweep_stats(self, capsys, tmp_path):
        assert main(["sweep", "hplajw", "--targets", "1e7",
                     "--duration", "2", "--cache-dir", str(tmp_path), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "perf counters" in out
        assert "cells_simulated" in out


class TestTrace:
    def test_trace_writes_loadable_chrome_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "hplajw", "--duration", "5", "--seed", "3",
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        events = payload["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert "read" in names or "write" in names
        assert "scrub_stripe" in names
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "dirty_stripes" in counters
        assert "parity_lag_bytes" in counters
        out = capsys.readouterr().out
        assert "ui.perfetto.dev" in out

    def test_trace_jsonl_and_histogram_export(self, tmp_path, capsys):
        import json

        hist_path = tmp_path / "hists.json"
        jsonl_path = tmp_path / "trace.jsonl"
        assert main(["trace", "hplajw", "--duration", "5",
                     "--out", str(tmp_path / "t.json"),
                     "--jsonl", str(jsonl_path),
                     "--hist-out", str(hist_path)]) == 0
        payload = json.loads(hist_path.read_text())
        assert payload["workload"] == "hplajw"
        assert "client_write" in payload["histograms"]["classes"]
        first = json.loads(jsonl_path.read_text().splitlines()[0])
        assert first["kind"] in ("span", "instant", "counter")

    def test_unknown_workload_falls_back_to_generic(self, tmp_path, capsys):
        assert main(["trace", "uncompressed", "--duration", "2",
                     "--out", str(tmp_path / "t.json")]) == 0
        err = capsys.readouterr().err
        assert "generic" in err

    def test_percentile_table_printed(self, tmp_path, capsys):
        assert main(["trace", "hplajw", "--duration", "5",
                     "--out", str(tmp_path / "t.json")]) == 0
        out = capsys.readouterr().out
        assert "p95" in out
        assert "client_write" in out


class TestReport:
    def test_report_runs_workload(self, capsys):
        assert main(["report", "hplajw", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "p99" in out
        assert "client_read" in out

    def test_report_from_exported_histograms(self, tmp_path, capsys):
        hist_path = tmp_path / "hists.json"
        assert main(["trace", "hplajw", "--duration", "5",
                     "--out", str(tmp_path / "t.json"),
                     "--hist-out", str(hist_path)]) == 0
        capsys.readouterr()
        assert main(["report", "--from", str(hist_path)]) == 0
        out = capsys.readouterr().out
        assert "client_write" in out

    def test_report_needs_a_source(self):
        with pytest.raises(SystemExit):
            main(["report"])

    def test_report_from_missing_file_fails_clearly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "--from", "/no/such/file.json"])
        message = str(excinfo.value)
        assert "/no/such/file.json" in message
        assert "afraid-sim trace --hist-out" in message

    def test_report_from_truncated_file_fails_clearly(self, tmp_path):
        path = tmp_path / "trunc.json"
        path.write_text('{"histograms": {"min_lat')  # cut mid-write
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "--from", str(path)])
        message = str(excinfo.value)
        assert str(path) in message
        assert "not valid JSON" in message

    def test_report_from_wrong_shape_fails_clearly(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"some": "other payload"}')
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "--from", str(path)])
        assert "wrong shape" in str(excinfo.value)


class TestAvailabilityJson:
    def test_json_format(self, capsys):
        import json

        assert main(["availability", "--fraction", "0.1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["unprotected_fraction"] == 0.1
        assert payload["afraid_mttdl_h"] > 0
        assert 0.0 <= payload["loss_probability"] <= 1.0

    def test_json_encodes_infinity_as_string(self, capsys):
        import json

        # Zero exposure with zero disks is degenerate; instead pin the
        # raid5 field, which is finite, and check the encoder via types.
        assert main(["availability", "--fraction", "0.0", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload["raid5_mttdl_h"], (int, float))


class TestSloFlags:
    def test_run_with_breached_slo(self, capsys):
        assert main(["run", "hplajw", "--duration", "3",
                     "--slo", "parity_lag_bytes < 1"]) == 0
        out = capsys.readouterr().out
        assert "SLOs" in out
        assert "BREACH" in out

    def test_run_slo_json_payload(self, capsys):
        import json

        assert main(["run", "hplajw", "--duration", "3", "--json",
                     "--slo", "parity_lag_bytes < 1",
                     "--slo", "dirty_stripes <= 1e9"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["slo"]["breached"] is True
        assert "parity_lag_bytes < 1" in payload["slo"]["rules"]
        assert payload["slo"]["events"][0]["kind"] == "breach"

    def test_bad_slo_rule_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "hplajw", "--duration", "2", "--slo", "not a rule"])
        assert "--slo" in str(excinfo.value)

    def test_compare_with_slo_column(self, capsys):
        assert main(["compare", "hplajw", "--duration", "2",
                     "--slo", "parity_lag_bytes < 1"]) == 0
        out = capsys.readouterr().out
        assert "SLO breaches" in out
        # raid5 never accrues parity lag, so its engine stays clean.
        assert "raid5:" in out


class TestExposure:
    def test_table_output(self, capsys):
        assert main(["exposure", "hplajw", "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "windowed_mttdl_h" in out
        assert "windowed estimators vs eq. (2c)" in out
        assert "dirty_dwell" in out

    def test_windowed_column_matches_analytic_at_small_horizon(self, capsys):
        """With window >= horizon the windowed estimator covers the whole
        run, so both MTTDL columns agree."""
        assert main(["exposure", "hplajw", "--duration", "3",
                     "--window", "10"]) == 0
        out = capsys.readouterr().out
        line = next(row for row in out.splitlines() if row.startswith("achieved MTTDL"))
        cells = [c for c in line.split("  ") if c.strip()]
        assert cells[1].strip() == cells[2].strip()

    def test_prom_and_jsonl_export(self, tmp_path, capsys):
        from repro.obs import parse_prometheus_text, read_jsonl_snapshots

        prom = tmp_path / "metrics.prom"
        jsonl = tmp_path / "snaps.jsonl"
        assert main(["exposure", "hplajw", "--duration", "2",
                     "--prom", str(prom), "--jsonl", str(jsonl)]) == 0
        parsed = parse_prometheus_text(prom.read_text())
        assert parsed["types"]["parity_lag_bytes"] == "gauge"
        assert "stripe_dirty_dwell_seconds" in parsed["histograms"]
        snaps = read_jsonl_snapshots(jsonl)
        assert len(snaps) == 40  # 2 s at the default 50 ms period
        assert snaps[0]["time_s"] == 0.0

    def test_json_output(self, capsys):
        import json

        assert main(["exposure", "hplajw", "--duration", "2", "--json",
                     "--slo", "parity_lag_bytes < 1e12"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["windowed_mttdl_h"] > 0
        assert payload["slo"]["breached"] is False
        assert payload["result"]["workload"] == "hplajw"
        assert payload["snapshots"] == 40

    def test_fail_on_breach_exit_code(self, capsys):
        assert main(["exposure", "hplajw", "--duration", "2",
                     "--slo", "parity_lag_bytes < 1",
                     "--fail-on-breach"]) == 1
        assert main(["exposure", "hplajw", "--duration", "2",
                     "--slo", "parity_lag_bytes < 1e12",
                     "--fail-on-breach"]) == 0


class TestReportFromEventLog:
    """``report --from`` also accepts service NDJSON event logs."""

    @staticmethod
    def _event_log(tmp_path):
        import json

        lines = [
            {"event": "submitted", "job": "job-000001"},
            {"event": "cell_completed", "cell": "hplajw/afraid", "latency_s": 0.012},
            {"event": "cell_completed", "cell": "hplajw/afraid", "latency_s": 0.034},
            {"event": "cell_completed", "cell": "hplajw/raid0", "latency_s": 0.002},
            {"event": "job_completed", "job": "job-000001"},
        ]
        path = tmp_path / "events.ndjson"
        path.write_text("".join(json.dumps(line) + "\n" for line in lines))
        return path

    def test_report_from_ndjson_event_log(self, tmp_path, capsys):
        assert main(["report", "--from", str(self._event_log(tmp_path))]) == 0
        out = capsys.readouterr().out
        assert "service event log" in out
        assert "hplajw/afraid" in out
        assert "hplajw/raid0" in out

    def test_single_event_line_is_treated_as_a_log(self, tmp_path, capsys):
        path = tmp_path / "one.ndjson"
        path.write_text('{"event": "cell_completed", "cell": "c", "latency_s": 0.01}\n')
        assert main(["report", "--from", str(path)]) == 0
        assert "service event log" in capsys.readouterr().out

    def test_bad_line_names_both_formats(self, tmp_path):
        path = tmp_path / "mixed.ndjson"
        path.write_text('{"event": "submitted"}\nnot json at all\n')
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "--from", str(path)])
        message = str(excinfo.value)
        assert "line 2" in message
        assert "afraid-sim trace --hist-out" in message
        assert "GET /jobs/<id>/events" in message

    def test_non_event_lines_fail_clearly(self, tmp_path):
        path = tmp_path / "noevents.ndjson"
        path.write_text('{"foo": 1}\n{"bar": 2}\n')
        with pytest.raises(SystemExit) as excinfo:
            main(["report", "--from", str(path)])
        assert "not a service event" in str(excinfo.value)


class TestNemesis:
    QUICK = ["nemesis", "snake", "--duration", "6", "--seed", "3",
             "--disk-failures", "1", "--nvram-losses", "1", "--latent-errors", "1"]

    def test_defaults_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["nemesis"])
        assert args.workload == "snake"
        assert args.duration == 30.0
        assert args.slo is None  # falls back to DEFAULT_NEMESIS_SLOS

    def test_smoke_prints_tables(self, capsys):
        assert main(self.QUICK) == 0
        out = capsys.readouterr().out
        assert "fault kind" in out
        assert "injection gate:" in out
        assert "timeline:" in out
        assert "INVARIANT VIOLATION" not in out

    def test_json_summary(self, capsys):
        import json

        assert main([*self.QUICK, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["nemesis"]["seed"] == 3
        assert payload["invariants"]["ok"] is True

    def test_report_dir_and_fail_on_violation(self, tmp_path, capsys):
        report = tmp_path / "nemesis-run"
        assert main([*self.QUICK, "--report", str(report),
                     "--fail-on-violation"]) == 0
        for name in ("timeline.jsonl", "trace.json", "metrics.prom",
                     "incident.md", "summary.json"):
            assert (report / name).is_file(), name
        first = (report / "timeline.jsonl").read_bytes()
        rerun = tmp_path / "nemesis-rerun"
        assert main([*self.QUICK, "--report", str(rerun)]) == 0
        assert (rerun / "timeline.jsonl").read_bytes() == first

    def test_bad_spec_fails_clearly(self):
        with pytest.raises(SystemExit):
            main(["nemesis", "--duration", "0"])

    def test_custom_slo_rules(self, capsys):
        assert main([*self.QUICK, "--slo", "degraded_disks < 2"]) == 0
        assert "degraded_disks < 2" in capsys.readouterr().out
