"""Tests for the afraid-sim command-line interface."""

import pytest

from repro.cli import main
from repro.traces import make_trace, write_trace_csv


class TestWorkloads:
    def test_lists_all_ten(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("hplajw", "snake", "cello-usr", "cello-news", "netware",
                     "ATT", "AS400-1", "AS400-2", "AS400-3", "AS400-4"):
            assert name in out


class TestRun:
    def test_afraid_run(self, capsys):
        assert main(["run", "hplajw", "--duration", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean I/O time" in out
        assert "disk MTTDL" in out

    def test_mttdl_policy_needs_target(self):
        with pytest.raises(SystemExit):
            main(["run", "hplajw", "--policy", "mttdl", "--duration", "5"])

    def test_mttdl_policy_with_target(self, capsys):
        assert main(["run", "hplajw", "--policy", "mttdl", "--mttdl-target", "1e7",
                     "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "MTTDL_1e+07" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "nosuch"])

    def test_json_output_parses(self, capsys):
        import json

        assert main(["run", "AS400-4", "--duration", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "AS400-4"
        assert payload["policy"] == "afraid"
        assert payload["mean_io_time_s"] > 0
        assert 0.0 <= payload["unprotected_fraction"] <= 1.0


class TestCompare:
    def test_three_models(self, capsys):
        assert main(["compare", "AS400-4", "--duration", "8", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        for model in ("raid0", "afraid", "raid5"):
            assert model in out
        assert "vs RAID5" in out


class TestAnalyze:
    def test_catalog_workload(self, capsys):
        assert main(["analyze", "snake", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "write fraction" in out
        assert "duty cycle" in out

    def test_csv_file(self, tmp_path, capsys):
        path = tmp_path / "capture.csv"
        write_trace_csv(make_trace("AS400-3", duration_s=10.0, seed=4), path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "capture" in out


class TestAvailability:
    def test_calculator(self, capsys):
        assert main(["availability", "--fraction", "0.1", "--years", "3"]) == 0
        out = capsys.readouterr().out
        assert "RAID 5 disk MTTDL" in out
        assert "P(loss in 3 years)" in out

    def test_reproduces_eq1(self, capsys):
        main(["availability", "--fraction", "0.0"])
        out = capsys.readouterr().out
        assert "4.2e+09 h" in out
