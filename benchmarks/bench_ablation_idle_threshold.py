"""Ablation — the idle-detector threshold.

The paper fixes a 100 ms timer-based idleness threshold (§4.1).  This
ablation sweeps it: a hair-trigger scrubber reclaims redundancy faster
(lower unprotected fraction) but risks colliding with the next burst; a
sluggish one leaves data exposed longer.  Mean I/O time should be nearly
flat — scrubbing is background work — while exposure rises with the
threshold.
"""

from conftest import BENCH_DURATION_S, BENCH_SEED, run_once

from repro.harness import format_table, run_experiment
from repro.policy import BaselineAfraidPolicy

WORKLOAD = "cello-usr"
THRESHOLDS_S = (0.010, 0.050, 0.100, 0.500, 2.000)


def compute():
    results = {}
    for threshold in THRESHOLDS_S:
        results[threshold] = run_experiment(
            WORKLOAD,
            BaselineAfraidPolicy(),
            duration_s=BENCH_DURATION_S,
            seed=BENCH_SEED,
            idle_threshold_s=threshold,
        )
    return results


def test_ablation_idle_threshold(benchmark, report):
    results = run_once(benchmark, compute)

    rows = [
        [
            f"{threshold * 1e3:.0f} ms",
            f"{result.mean_io_time_ms:.2f}",
            f"{result.unprotected_fraction:.1%}",
            f"{result.mean_parity_lag_bytes / 1024:.1f}",
            str(result.stripes_scrubbed),
        ]
        for threshold, result in results.items()
    ]
    report(
        format_table(
            ["idle threshold", "mean I/O ms", "unprot time", "mean lag KB", "scrubbed"],
            rows,
            title=f"Ablation: idle-detection threshold on {WORKLOAD} (paper default: 100 ms)",
        )
    )

    exposures = [results[threshold].unprotected_fraction for threshold in THRESHOLDS_S]
    # Exposure grows with the threshold (each pause before scrubbing is
    # pure additional vulnerability).
    assert exposures[0] < exposures[-1]
    assert all(later >= earlier * 0.9 for earlier, later in zip(exposures, exposures[1:]))
    # Performance stays essentially flat: parity rebuilds are background.
    means = [results[threshold].io_time.mean for threshold in THRESHOLDS_S]
    assert max(means) / min(means) < 1.5
