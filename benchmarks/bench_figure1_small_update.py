"""Figure 1 — the small-update problem.

The paper's Figure 1 diagrams why a RAID 5 small write needs 3-4 disk
I/Os (read old data, read old parity, write data, write parity), all in
the critical path.  This bench measures it directly: one 8 KB write to a
quiet 5-disk array under each model, reporting critical-path disk I/Os
and latency.
"""

import pytest
from conftest import run_once

from repro.array import ArrayRequest, build_array
from repro.disk import IoKind
from repro.harness import format_table
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, NeverScrubPolicy
from repro.sim import Simulator


def one_small_write(policy):
    sim = Simulator()
    array = build_array(sim, policy, idle_threshold_s=1e9)
    request = ArrayRequest(IoKind.WRITE, offset_sectors=100_000, nsectors=16)  # 8 KB
    done = array.submit(request)
    sim.run_until_triggered(done)
    stats = array.stats
    return {
        "latency_ms": request.io_time * 1e3,
        "prereads": stats.preread_ios,
        "data_writes": stats.foreground_data_writes,
        "parity_writes": stats.foreground_parity_writes,
        "total_ios": stats.foreground_disk_ios,
    }


def compute():
    return {
        "raid5": one_small_write(AlwaysRaid5Policy()),
        "afraid": one_small_write(BaselineAfraidPolicy()),
        "raid0": one_small_write(NeverScrubPolicy()),
    }


def test_figure1_small_update(benchmark, report):
    result = run_once(benchmark, compute)

    rows = []
    for model in ("raid5", "afraid", "raid0"):
        r = result[model]
        rows.append(
            [
                model,
                r["prereads"],
                r["data_writes"],
                r["parity_writes"],
                r["total_ios"],
                f"{r['latency_ms']:.2f}",
            ]
        )
    report(
        format_table(
            ["model", "pre-reads", "data writes", "parity writes", "total I/Os", "latency ms"],
            rows,
            title="Figure 1: one 8 KB write to a quiet 5-disk array",
        )
    )

    # The paper's core claim: 4 I/Os in the critical path for RAID 5
    # (3 when the old data is cached), 1 for AFRAID.
    assert result["raid5"]["total_ios"] == 4
    assert result["afraid"]["total_ios"] == 1
    assert result["raid0"]["total_ios"] == 1
    # Latency advantage well beyond noise:
    assert result["raid5"]["latency_ms"] > 1.8 * result["afraid"]["latency_ms"]
    # AFRAID == RAID 0 on the write path (identical code path).
    assert result["afraid"]["latency_ms"] == pytest.approx(result["raid0"]["latency_ms"], rel=0.01)
