"""Table 1 — assumed reliability values, plus the §3.1 figures derived
from them (the 4x10^9-hour / 475,000-year RAID 5 MTTDL and the NVRAM-loss
window argument)."""

import pytest
from conftest import run_once

from repro.availability import (
    TABLE_1,
    loss_probability,
    mdlr_raid_catastrophic,
    raid5_mttdl_catastrophic,
)
from repro.harness import format_quantity, format_table

HOURS_PER_YEAR = 24 * 365.25


def compute():
    params = TABLE_1
    raid5 = raid5_mttdl_catastrophic(5, params.mttf_disk_h, params.mttr_h)
    return {
        "rows": params.rows(),
        "raid5_mttdl_h": raid5,
        "raid5_years": raid5 / HOURS_PER_YEAR,
        "catastrophic_mdlr": mdlr_raid_catastrophic(5, params.disk_bytes, raid5),
        "p_loss_3yr_at_1m_h": loss_probability(1.0e6, 3 * HOURS_PER_YEAR),
        # §3.1's NVRAM-failure window: a ~10-minute full rebuild at 5 MB/s
        # during which an unexpected single-disk failure loses data.
        "nvram_window_mttdl_h": _nvram_window_mttdl(params),
    }


def _nvram_window_mttdl(params):
    rebuild_h = (params.disk_bytes / 5e6) / 3600.0  # ~0.11 h to re-read one disk
    nvram_mttf_h = 500e3
    disk_failure_rate_per_h = 5 / params.mttf_disk_h
    # Rate of (NVRAM failure) x P(disk failure inside the rebuild window):
    return 1.0 / ((1.0 / nvram_mttf_h) * (disk_failure_rate_per_h * rebuild_h))


def test_table1_parameters(benchmark, report):
    result = run_once(benchmark, compute)

    lines = [format_table(["Parameter", "Value"], result["rows"], title="Table 1: values assumed for calculations")]
    lines.append("")
    lines.append("Derived (section 3.1):")
    lines.append(f"  eq.(1) 5-disk RAID 5 MTTDL     = {format_quantity(result['raid5_mttdl_h'], ' h')}"
                 f"  (~{result['raid5_years']:,.0f} years; paper: ~4e9 h / 475,000 years)")
    lines.append(f"  eq.(3) catastrophic MDLR       = {result['catastrophic_mdlr']:.2f} B/h (paper: ~0.8)")
    lines.append(f"  P(loss in 3 yr @ 1M h MTTDL)   = {result['p_loss_3yr_at_1m_h']:.1%} (paper: 2.6%)")
    lines.append(f"  NVRAM-loss window MTTDL        = {format_quantity(result['nvram_window_mttdl_h'], ' h')}"
                 f" (paper: > 1e11 h, 'safely ignored')")
    report("\n".join(lines))

    assert result["raid5_mttdl_h"] == pytest.approx(4.17e9, rel=0.05)
    assert result["catastrophic_mdlr"] == pytest.approx(0.8, rel=0.05)
    assert result["p_loss_3yr_at_1m_h"] == pytest.approx(0.026, rel=0.1)
    assert result["nvram_window_mttdl_h"] > 1e11
