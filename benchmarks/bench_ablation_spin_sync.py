"""Ablation — spin synchronisation.

The paper simulates spin-synchronised arrays "to simplify the discussions
and save space" (§4.1).  This ablation staggers the spindle phases to
check how much that simplification matters: parallel multi-disk
operations (RAID 5 pre-read pairs, full-stripe writes, scrubs) complete
when the *slowest* member does, so staggered phases add up to most of a
revolution to the critical path — while AFRAID's single-disk small write
is indifferent.
"""

from conftest import BENCH_DURATION_S, BENCH_SEED, run_once

from repro.array.factory import build_array
from repro.harness import format_table
from repro.harness.replay import replay_trace
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy
from repro.sim import Simulator
from repro.traces import make_trace

WORKLOAD = "snake"


def run_one(policy_cls, spin_synchronised):
    sim = Simulator()
    array = build_array(sim, policy_cls(), spin_synchronised=spin_synchronised)
    trace = make_trace(
        WORKLOAD,
        duration_s=BENCH_DURATION_S,
        address_space_sectors=array.layout.total_data_sectors,
        seed=BENCH_SEED,
    )
    outcome = replay_trace(sim, array, trace)
    return 1e3 * sum(outcome.io_times) / len(outcome.io_times)


def compute():
    grid = {}
    for label, policy_cls in (("afraid", BaselineAfraidPolicy), ("raid5", AlwaysRaid5Policy)):
        grid[(label, "synchronised")] = run_one(policy_cls, True)
        grid[(label, "staggered")] = run_one(policy_cls, False)
    return grid


def test_ablation_spin_sync(benchmark, report):
    grid = run_once(benchmark, compute)

    rows = [
        [
            label,
            f"{grid[(label, 'synchronised')]:.2f}",
            f"{grid[(label, 'staggered')]:.2f}",
            f"{grid[(label, 'staggered')] / grid[(label, 'synchronised')]:.3f}x",
        ]
        for label in ("afraid", "raid5")
    ]
    report(
        format_table(
            ["model", "spin-sync mean I/O ms", "staggered mean I/O ms", "staggered/sync"],
            rows,
            title=f"Ablation: spindle synchronisation on {WORKLOAD} (paper assumes synchronised)",
        )
    )

    # Both configurations tell the same AFRAID-vs-RAID 5 story:
    for column in ("synchronised", "staggered"):
        assert grid[("raid5", column)] > 2.0 * grid[("afraid", column)]
    # ... and the simplification itself shifts means by well under the
    # policy effect (the paper's choice was safe).
    for label in ("afraid", "raid5"):
        ratio = grid[(label, "staggered")] / grid[(label, "synchronised")]
        assert 0.7 < ratio < 1.4, (label, ratio)
