"""Extension bench — degraded mode and the whole-disk rebuild window.

Checks the paper's §3.1 back-of-envelope: rebuilding parity (or a lost
member) across a 2 GB disk at ~5 MB/s sustained takes "about ten
minutes".  A full-array sweep is too many simulated I/Os for a routine
bench, so we rebuild a contiguous slice and extrapolate by stripe count,
then verify degraded-mode read service stays available (at a
reconstruction premium) during the window.
"""

from conftest import run_once

from repro.array import ArrayRequest, build_array
from repro.disk import DiskIO, IoKind
from repro.harness import format_table
from repro.policy import AlwaysRaid5Policy
from repro.sim import AllOf, Simulator

SAMPLE_STRIPES = 3000


#: A real rebuild reads in large sequential chunks, not one 8 KB unit at
#: a time (which would miss a revolution per stripe).  64 stripes = 512 KB
#: per member disk per I/O.
CHUNK_STRIPES = 64


def compute():
    sim = Simulator()
    array = build_array(sim, AlwaysRaid5Policy(), read_cache_bytes=0)
    unit_sectors = array.layout.stripe_unit_sectors
    victim = 2

    # Pick extents whose data unit lives on the victim disk, spread over
    # the address space; measure them healthy, then degraded — identical
    # addresses, so the comparison isolates the reconstruction cost.
    offsets = []
    stripe = 0
    while len(offsets) < 20:
        stripe += 997  # spread across the disk
        target_units = [
            u
            for u in range(array.layout.data_units_per_stripe)
            if array.layout.data_disk(stripe % array.layout.nstripes, u) == victim
        ]
        if target_units:
            offsets.append(
                array.layout.logical_sector_of_unit(stripe % array.layout.nstripes, target_units[0])
            )

    def measure_reads():
        busy_before = sum(disk.stats.busy_time for disk in array.disks)
        times = []
        for offset in offsets:
            request = ArrayRequest(IoKind.READ, offset, 16)
            done = array.submit(request)
            sim.run_until_triggered(done)
            times.append(request.io_time)
        busy = sum(disk.stats.busy_time for disk in array.disks) - busy_before
        return 1e3 * sum(times) / len(times), 1e3 * busy / len(times)

    healthy_ms, healthy_busy_ms = measure_reads()
    array.disks[victim].fail()
    array.enter_degraded(victim)
    degraded_ms, degraded_busy_ms = measure_reads()

    # Rebuild-sweep timing over a sample, in rebuild-sized chunks.
    start = sim.now
    chunks = SAMPLE_STRIPES // CHUNK_STRIPES
    for chunk in range(chunks):
        lba = chunk * CHUNK_STRIPES * unit_sectors
        reads = []
        for member in range(array.ndisks):
            if member == victim:
                continue
            reads.append(
                array.drivers[member].submit(
                    DiskIO(IoKind.READ, lba, CHUNK_STRIPES * unit_sectors)
                )
            )
        sim.run_until_triggered(AllOf(sim, reads))
    per_stripe = (sim.now - start) / (chunks * CHUNK_STRIPES)
    full_sweep_s = per_stripe * array.layout.nstripes

    return {
        "healthy_ms": healthy_ms,
        "degraded_ms": degraded_ms,
        "healthy_busy_ms": healthy_busy_ms,
        "degraded_busy_ms": degraded_busy_ms,
        "per_stripe_ms": per_stripe * 1e3,
        "nstripes": array.layout.nstripes,
        "full_sweep_min": full_sweep_s / 60.0,
    }


def test_ext_rebuild_window(benchmark, report):
    result = run_once(benchmark, compute)

    rows = [
        ["healthy read latency", f"{result['healthy_ms']:.2f} ms"],
        ["degraded read latency", f"{result['degraded_ms']:.2f} ms"],
        ["healthy disk-seconds per read", f"{result['healthy_busy_ms']:.2f} ms"],
        ["degraded disk-seconds per read", f"{result['degraded_busy_ms']:.2f} ms"],
        ["sweep cost per stripe", f"{result['per_stripe_ms']:.2f} ms"],
        ["stripes on a member disk", str(result["nstripes"])],
        ["extrapolated full sweep", f"{result['full_sweep_min']:.1f} min"],
    ]
    report(
        format_table(
            ["quantity", "value"],
            rows,
            title="Extension: degraded mode + rebuild window (paper section 3.1: 'about ten minutes')",
        )
    )

    # Degraded reads stay available at similar *latency* on a quiet,
    # spin-synchronised array (the reconstruction reads run in parallel),
    # but consume several disks' worth of bandwidth — the classic
    # degraded-mode throughput cost ([Muntz90]).
    assert 0.7 * result["healthy_ms"] < result["degraded_ms"] < 5 * result["healthy_ms"]
    assert result["degraded_busy_ms"] > 2.5 * result["healthy_busy_ms"]
    # The §3.1 claim: a whole-disk sweep lands in the minutes range
    # (the paper says ~10; sequential-read efficiency puts ours nearby).
    assert 3.0 < result["full_sweep_min"] < 30.0
