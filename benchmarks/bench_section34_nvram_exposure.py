"""Section 3.4, measured — AFRAID's exposure vs a single-copy NVRAM cache.

The paper argues analytically that "single-copy NVRAM applications are
already accepting significantly higher risk of data loss than results
from the temporary lack of parity protection in AFRAID."  This bench
measures both exposures from the same workload:

* an **AFRAID write-through** array: vulnerable data = the parity lag,
  at risk from a *disk* failure (MTTF 2M h effective);
* a **RAID 5 write-back** array (PrestoServe-style): vulnerable data =
  dirty bytes behind the NVRAM, at risk from an *NVRAM* failure
  (PrestoServe MTTF: 15k h).

The resulting MDLRs put numbers on §3.4's claim — and show the NVRAM
configuration also fails to match AFRAID's performance, because its
flushes still pay the RAID 5 small-write cost in the background.
"""

from conftest import BENCH_DURATION_S, BENCH_SEED, run_once

from repro.array.factory import build_array
from repro.availability import PRESTOSERVE, TABLE_1, mdlr_unprotected
from repro.harness import format_table
from repro.harness.replay import replay_trace
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy
from repro.sim import Simulator
from repro.traces import make_trace

WORKLOAD = "cello-usr"


def run_one(policy_cls, write_policy):
    sim = Simulator()
    array = build_array(sim, policy_cls(), write_policy=write_policy)
    trace = make_trace(
        WORKLOAD,
        duration_s=BENCH_DURATION_S,
        address_space_sectors=array.layout.total_data_sectors,
        seed=BENCH_SEED,
    )
    outcome = replay_trace(sim, array, trace)
    return {
        "mean_io_ms": 1e3 * sum(outcome.io_times) / len(outcome.io_times),
        "parity_lag_bytes": array.lag_tracker.mean_parity_lag_bytes,
        "nvram_dirty_bytes": array.nvram_dirty_tracker.mean_parity_lag_bytes,
    }


def compute():
    afraid = run_one(BaselineAfraidPolicy, "writethrough")
    nvram_raid5 = run_one(AlwaysRaid5Policy, "writeback")
    afraid["mdlr"] = mdlr_unprotected(5, afraid["parity_lag_bytes"], TABLE_1.mttf_disk_h)
    # The NVRAM cache loses its dirty bytes when the card dies:
    nvram_raid5["mdlr"] = nvram_raid5["nvram_dirty_bytes"] / PRESTOSERVE.mttf_h
    return {"afraid": afraid, "nvram_raid5": nvram_raid5}


def test_section34_nvram_exposure(benchmark, report):
    result = run_once(benchmark, compute)

    rows = [
        [
            "AFRAID (write-through)",
            f"{result['afraid']['mean_io_ms']:.2f}",
            f"{result['afraid']['parity_lag_bytes'] / 1024:.1f} KB parity lag",
            f"{result['afraid']['mdlr']:.3f}",
        ],
        [
            "RAID 5 + NVRAM write-back",
            f"{result['nvram_raid5']['mean_io_ms']:.2f}",
            f"{result['nvram_raid5']['nvram_dirty_bytes'] / 1024:.1f} KB dirty NVRAM",
            f"{result['nvram_raid5']['mdlr']:.3f}",
        ],
    ]
    report(
        format_table(
            ["configuration", "mean I/O ms", "mean vulnerable data", "MDLR B/h"],
            rows,
            title=(
                f"Section 3.4 measured on {WORKLOAD}: AFRAID's parity lag vs a "
                "PrestoServe-class write cache"
            ),
        )
    )

    # The §3.4 punchline: the NVRAM configuration's loss rate exceeds
    # AFRAID's unprotected-data contribution on this workload.
    assert result["nvram_raid5"]["mdlr"] > result["afraid"]["mdlr"]
    # And the cache only *hides* the small-update problem: its background
    # flushes still pay 4 disk I/Os each, so reads queue behind them and
    # overall mean I/O time stays far above AFRAID, which removes the
    # work rather than deferring its cost.
    assert result["afraid"]["mean_io_ms"] < 0.6 * result["nvram_raid5"]["mean_io_ms"]