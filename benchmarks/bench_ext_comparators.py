"""Extension benches — the §2 comparator and the §5 RAID 6 refinement.

Two extra columns for the paper's story:

* **parity logging** [Stodolsky93]: keeps full redundancy, but its small
  write still pre-reads old data (2 foreground I/Os vs AFRAID's 1) and
  its batched log reclaims interfere with the foreground;
* **AFRAID-on-RAID 6**: a RAID 6 small write costs 6 I/Os; deferring Q
  gives immediate single-failure tolerance at 4 I/Os; deferring both is
  the full AFRAID bet at 1 I/O.
"""

from conftest import BENCH_SEED, run_once

from repro.array import build_array
from repro.array.request import ArrayRequest
from repro.disk import hp_c3325
from repro.ext.parity_logging import ParityLogConfig, ParityLoggingArray
from repro.ext.raid6_afraid import DeferralMode, Raid6AfraidArray
from repro.harness import format_table
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy
from repro.sim import Simulator
from repro.traces import make_trace

DURATION_S = 30.0
WORKLOAD = "cello-usr"


def replay_on(array, sim, stats_fn):
    trace = make_trace(
        WORKLOAD,
        duration_s=DURATION_S,
        address_space_sectors=array.layout.total_data_sectors,
        seed=BENCH_SEED,
    )
    completions = []

    def feeder():
        for record in trace:
            if record.time_s > sim.now:
                yield sim.timeout(record.time_s - sim.now)
            completions.append(
                array.submit(
                    ArrayRequest(record.kind, record.offset_sectors, record.nsectors)
                )
            )

    proc = sim.process(feeder())
    sim.run_until_triggered(proc)
    for event in completions:
        if not event.processed:
            sim.run_until_triggered(event)
    return stats_fn(array)


def compute():
    results = {}

    sim = Simulator()
    results["raid5"] = replay_on(
        build_array(sim, AlwaysRaid5Policy()), sim, lambda a: a.stats.mean_io_time
    )
    sim = Simulator()
    results["parity-logging"] = replay_on(
        ParityLoggingArray(
            sim,
            [hp_c3325(sim, name=f"pl{i}") for i in range(5)],
            stripe_unit_sectors=16,
            config=ParityLogConfig(),
        ),
        sim,
        lambda a: a.mean_io_time,
    )
    sim = Simulator()
    results["afraid"] = replay_on(
        build_array(sim, BaselineAfraidPolicy()), sim, lambda a: a.stats.mean_io_time
    )
    for mode in DeferralMode:
        sim = Simulator()
        results[f"raid6/{mode.value}"] = replay_on(
            Raid6AfraidArray(
                sim,
                [hp_c3325(sim, name=f"r6{i}") for i in range(6)],
                stripe_unit_sectors=16,
                mode=mode,
            ),
            sim,
            lambda a: a.mean_io_time,
        )
    return results


def test_ext_comparators(benchmark, report):
    results = run_once(benchmark, compute)

    order = ["raid5", "parity-logging", "afraid", "raid6/raid6", "raid6/defer_q", "raid6/defer_both"]
    redundancy = {
        "raid5": "always 1-failure",
        "parity-logging": "always 1-failure",
        "afraid": "frequently 1-failure",
        "raid6/raid6": "always 2-failure",
        "raid6/defer_q": "always 1, frequently 2",
        "raid6/defer_both": "frequently 2-failure",
    }
    rows = [
        [name, f"{results[name] * 1e3:.2f}", redundancy[name]]
        for name in order
    ]
    report(
        format_table(
            ["model", "mean I/O ms", "redundancy guarantee"],
            rows,
            title=f"Extensions: comparators on {WORKLOAD} ({DURATION_S:g}s)",
        )
    )

    # §2's positioning: AFRAID < parity logging < RAID 5 under write load.
    assert results["afraid"] < results["parity-logging"] < results["raid5"] * 1.05
    # §5's ladder: each deferred syndrome buys performance.
    assert results["raid6/defer_both"] < results["raid6/defer_q"]
    assert results["raid6/defer_q"] < results["raid6/raid6"]
    # Full RAID 6 pays more than RAID 5 for its second syndrome.
    assert results["raid6/raid6"] > results["raid5"] * 0.9
