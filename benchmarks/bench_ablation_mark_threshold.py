"""Ablation — the forced-scrub dirty-stripe threshold.

The MTTDL_x policy forces a parity update "when more than 20 stripes are
unprotected, even if the array is not idle"; the paper reports this
number was "fairly effective and caused little performance degradation"
(§4.1).  This ablation sweeps the threshold on a busy trace: small caps
bound the parity lag (and hence MDLR) tightly but steal more foreground
bandwidth; large caps approach pure AFRAID.
"""

from conftest import BENCH_DURATION_S, BENCH_SEED, run_once

from repro.harness import format_table, run_experiment
from repro.policy import BaselineAfraidPolicy, DirtyStripeThresholdPolicy

WORKLOAD = "ATT"
THRESHOLDS = (5, 20, 100, 500)


def compute():
    results = {}
    for threshold in THRESHOLDS:
        results[threshold] = run_experiment(
            WORKLOAD,
            DirtyStripeThresholdPolicy(max_dirty_stripes=threshold),
            duration_s=BENCH_DURATION_S,
            seed=BENCH_SEED,
        )
    results["unbounded"] = run_experiment(
        WORKLOAD, BaselineAfraidPolicy(), duration_s=BENCH_DURATION_S, seed=BENCH_SEED
    )
    return results


def test_ablation_mark_threshold(benchmark, report):
    results = run_once(benchmark, compute)

    rows = []
    for key in list(THRESHOLDS) + ["unbounded"]:
        result = results[key]
        rows.append(
            [
                str(key),
                f"{result.mean_io_time_ms:.2f}",
                f"{result.mean_parity_lag_bytes / 1024:.1f}",
                f"{result.peak_parity_lag_bytes / 1024:.0f}",
                f"{result.mdlr_unprotected_bytes_per_h:.3f}",
                str(result.stripes_scrubbed),
            ]
        )
    report(
        format_table(
            ["max dirty stripes", "mean I/O ms", "mean lag KB", "peak lag KB", "MDLR_unprot B/h", "scrubbed"],
            rows,
            title=f"Ablation: forced-scrub threshold on {WORKLOAD} (paper uses 20)",
        )
    )

    # The cap starts a scrub, it does not block writes (the paper's rule
    # only "starts a parity update"), so under a saturating burst the
    # dirty count can overshoot; what the cap controls is the *sustained*
    # exposure.  Mean lag and MDLR_unprotected grow with the cap:
    lags = [results[threshold].mean_parity_lag_bytes for threshold in THRESHOLDS]
    assert all(later >= earlier * 0.95 for earlier, later in zip(lags, lags[1:]))
    assert lags[0] < 0.75 * results["unbounded"].mean_parity_lag_bytes
    mdlrs = [results[threshold].mdlr_unprotected_bytes_per_h for threshold in THRESHOLDS]
    assert mdlrs[0] < 0.75 * results["unbounded"].mdlr_unprotected_bytes_per_h
    # ... and tighter caps scrub more, not less.
    assert results[5].stripes_scrubbed >= results[500].stripes_scrubbed
    # The paper's observation: a 20-stripe cap costs little performance
    # relative to unbounded AFRAID.
    assert results[20].io_time.mean < 1.8 * results["unbounded"].io_time.mean
