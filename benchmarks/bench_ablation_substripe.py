"""Ablation — sub-stripe marking granularity (§5).

"The units of parity-reconstruction can have a smaller height than the
stripes used for data layout if more marker memory can be provided" —
with M bits per stripe, a rebuild reads only the dirty 1/M slice of each
unit.  This sweeps M on a write-heavy trace.

Finding (a genuine trade-off the paper's one-liner doesn't spell out):
finer marks cut the *media volume* a rebuild reads roughly in proportion
to M, but each slice still pays a full seek + rotation on every member
disk, so the scrubber's throughput in stripes/second drops.  With the
paper's 8 KB stripe units the positioning time dominates, so M > 1 buys
little exposure reduction here — it pays off when stripe units are tall
enough that the rebuild is transfer-bound, or with a scrubber that
coalesces adjacent dirty slices (coalescing is unmodelled, as in the
paper §4.1).
"""

from conftest import BENCH_DURATION_S, BENCH_SEED, run_once

from repro.array.factory import build_array
from repro.harness import format_table
from repro.harness.replay import replay_trace
from repro.policy import BaselineAfraidPolicy
from repro.sim import Simulator
from repro.traces import make_trace

WORKLOAD = "cello-news"
GRANULARITIES = (1, 2, 4, 8)


def run_one(bits):
    sim = Simulator()
    array = build_array(sim, BaselineAfraidPolicy(), bits_per_stripe=bits)
    trace = make_trace(
        WORKLOAD,
        duration_s=BENCH_DURATION_S,
        address_space_sectors=array.layout.total_data_sectors,
        seed=BENCH_SEED,
    )
    baseline_reads = sum(disk.stats.sectors_read for disk in array.disks)
    outcome = replay_trace(sim, array, trace)
    scrub_sectors = (
        sum(disk.stats.sectors_read for disk in array.disks) - baseline_reads
    )  # approximate: client reads included equally across runs
    return {
        "bits": bits,
        "mean_io_ms": 1e3 * sum(outcome.io_times) / len(outcome.io_times),
        "unprotected": array.lag_tracker.unprotected_fraction,
        "mean_lag_kb": array.lag_tracker.mean_parity_lag_bytes / 1024,
        "scrub_reads": array.stats.scrub_data_reads,
        "sectors_read": scrub_sectors,
        "nvram_bits": array.marks.size_bits,
    }


def compute():
    return [run_one(bits) for bits in GRANULARITIES]


def test_ablation_substripe(benchmark, report):
    results = run_once(benchmark, compute)

    rows = [
        [
            str(result["bits"]),
            f"{result['mean_io_ms']:.2f}",
            f"{result['unprotected']:.1%}",
            f"{result['mean_lag_kb']:.1f}",
            str(result["scrub_reads"]),
            str(result["sectors_read"]),
            f"{result['nvram_bits'] / 8 / 1024:.0f} KB",
        ]
        for result in results
    ]
    report(
        format_table(
            ["bits/stripe", "mean I/O ms", "unprot", "mean lag KB", "scrub read I/Os", "total sectors read", "NVRAM"],
            rows,
            title=f"Ablation: sub-stripe mark granularity on {WORKLOAD} (paper §5)",
        )
    )

    by_bits = {result["bits"]: result for result in results}
    # Finer marks read substantially less media per unit of parity debt.
    assert by_bits[8]["sectors_read"] < 0.6 * by_bits[1]["sectors_read"]
    # NVRAM cost grows linearly with M.
    assert by_bits[8]["nvram_bits"] == 8 * by_bits[1]["nvram_bits"]
    # Foreground performance is unaffected (scrubbing is background work).
    means = [result["mean_io_ms"] for result in results]
    assert max(means) / min(means) < 1.25
    # The trade-off: more scrub round-trips per stripe at finer grain.
    assert by_bits[8]["scrub_reads"] > by_bits[1]["scrub_reads"]
