"""End-to-end trace-replay macro-benchmark (and its regression gate).

The kernel micro-benches (`bench_kernel_throughput.py`) time the event
loop in isolation; a whole-trace replay spends most of its wall-clock
*above* the kernel — in the layout mapper, the mechanical-disk timing
model, and the controller write paths.  This bench measures that full
data plane: it synthesises the paper-trace mix once, then replays it
end-to-end (array construction + open-loop replay) through RAID 0,
AFRAID, and RAID 5.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_trace_replay.py            # full mix
    PYTHONPATH=src python benchmarks/bench_trace_replay.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_trace_replay.py \
        --json replay-timings.json --check BENCH_replay.json          # gate

``--check`` compares the measured end-to-end total against the
``after_s`` entries of a committed baseline (``BENCH_replay.json``) and
exits non-zero on a > ``--tolerance`` (default 25%) wall-clock
regression, so the fast path cannot silently rot.

Timings are best-of-N wall-clock seconds (``time.perf_counter``) after
one warm-up replay; the replayed work is deterministic, so best-of-N
isolates scheduler noise rather than hiding variance.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.array.factory import build_array
from repro.harness.replay import replay_trace
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, NeverScrubPolicy
from repro.sim import Simulator
from repro.traces import make_trace

#: The trace mix: one light interactive workload, one bursty
#: news/timesharing mix, and the write-heavy database workload the paper
#: calls out as having the fewest idle periods (§4.4).
MIX_WORKLOADS = ("cello-usr", "snake", "ATT")
POLICIES = ("raid0", "afraid", "raid5")

_POLICY_FACTORIES = {
    "raid0": NeverScrubPolicy,
    "afraid": BaselineAfraidPolicy,
    "raid5": AlwaysRaid5Policy,
}

#: Address space of the paper's 5-disk array (set once so trace synthesis
#: does not need an array built first).
_ADDRESS_SPACE_SECTORS = None


def _address_space_sectors() -> int:
    global _ADDRESS_SPACE_SECTORS
    if _ADDRESS_SPACE_SECTORS is None:
        sim = Simulator()
        array = build_array(sim, BaselineAfraidPolicy())
        _ADDRESS_SPACE_SECTORS = array.layout.total_data_sectors
    return _ADDRESS_SPACE_SECTORS


def make_mix(duration_s: float, seed: int):
    """Synthesise the paper-trace mix once (not part of the timed region)."""
    return {
        name: make_trace(
            name,
            duration_s=duration_s,
            address_space_sectors=_address_space_sectors(),
            seed=seed,
        )
        for name in MIX_WORKLOADS
    }


def replay_once(policy_name: str, traces) -> int:
    """One timed unit: build a fresh array per trace and replay end-to-end."""
    completed = 0
    for trace in traces.values():
        sim = Simulator()
        array = build_array(sim, _POLICY_FACTORIES[policy_name]())
        outcome = replay_trace(sim, array, trace)
        if outcome.failures:
            raise RuntimeError(f"{len(outcome.failures)} requests failed during the bench")
        completed += array.stats.completed
    return completed


def run_bench(duration_s: float, seed: int, best_of: int) -> dict:
    """Best-of-N end-to-end replay timings, per policy and total."""
    traces = make_mix(duration_s, seed)
    nrequests = {name: len(trace.records) for name, trace in traces.items()}
    timings: dict[str, float] = {}
    completed = 0
    for policy_name in POLICIES:
        replay_once(policy_name, traces)  # warm-up (imports, allocator)
        best = float("inf")
        for _ in range(best_of):
            start = time.perf_counter()
            completed = replay_once(policy_name, traces)
            best = min(best, time.perf_counter() - start)
        timings[policy_name] = best
        print(
            f"  {policy_name:7} best of {best_of}: {best:8.4f} s "
            f"({completed} requests serviced)",
            flush=True,
        )
    timings["end_to_end"] = sum(timings[name] for name in POLICIES)
    return {
        "duration_s": duration_s,
        "seed": seed,
        "best_of": best_of,
        "workloads": list(MIX_WORKLOADS),
        "trace_requests": nrequests,
        "timings_s": timings,
    }


def run_warm_bench(duration_s: float, seed: int, best_of: int, checkpoint_dir: str) -> dict:
    """Checkpoint-hit replay timings for the same mix (the ``warm_s`` column).

    An untimed cold pass populates the store under ``checkpoint_dir``;
    the timed passes then replay the identical (workload, policy) grid,
    which resumes from the stored final results instead of simulating.
    Trace synthesis stays outside the timed region, exactly as in
    :func:`run_bench`, so cold and warm time the same work.
    ``events_simulated`` summed over the timed passes must be zero —
    anything else means the store missed and the timing is not a warm
    measurement, so the bench refuses it.
    """
    from repro.harness.checkpoint import CheckpointStore
    from repro.harness.sharding import replay_trace_sharded

    traces = make_mix(duration_s, seed)
    store = CheckpointStore(checkpoint_dir)

    def replay_grid(policy_name: str) -> int:
        events = 0
        for workload, trace in traces.items():
            sim = Simulator()
            array = build_array(sim, _POLICY_FACTORIES[policy_name]())
            scope = store.scope(
                {
                    "surface": "bench_trace_replay",
                    "workload": workload,
                    "seed": seed,
                    "duration_s": duration_s,
                    "policy": policy_name,
                    "array": "paper-default",
                }
            )
            result = replay_trace_sharded(sim, array, trace, shards=1, checkpoint=scope)
            events += result.events_simulated
        return events

    timings: dict[str, float] = {}
    for policy_name in POLICIES:
        replay_grid(policy_name)  # cold pass: populate the store (untimed)
        best = float("inf")
        for _ in range(best_of):
            start = time.perf_counter()
            events = replay_grid(policy_name)
            best = min(best, time.perf_counter() - start)
            if events:
                raise RuntimeError(
                    f"warm replay of {policy_name} still simulated {events} "
                    f"events; the checkpoint store missed"
                )
        timings[policy_name] = best
        print(f"  {policy_name:7} warm best of {best_of}: {best:8.4f} s", flush=True)
    timings["end_to_end"] = sum(timings[name] for name in POLICIES)
    return timings


def check_against_baseline(report: dict, baseline_path: str, tolerance: float) -> int:
    """Exit status for the regression gate: 0 pass, 1 regression.

    The committed baseline carries a ``trajectory`` array — one entry per
    fast-path PR, oldest first, each with the ``after_s`` timings measured
    on that PR's tree (always against the same seed measurement, on one
    machine, interleaved to cancel load drift).  The gate compares against
    the **latest** entry, so each PR ratchets the allowance down; files
    from before the trajectory format (a bare top-level ``after_s``) still
    work.
    """
    advice = (
        "re-run the interleaved measurement protocol described in "
        "docs/PERFORMANCE.md and commit the refreshed BENCH_replay.json"
    )
    try:
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(
            f"check: baseline {baseline_path!r} does not exist, so there is "
            f"nothing to gate against; {advice}.",
            file=sys.stderr,
        )
        return 2
    except json.JSONDecodeError as exc:
        print(
            f"check: baseline {baseline_path!r} is not valid JSON ({exc}); {advice}.",
            file=sys.stderr,
        )
        return 2
    trajectory = baseline.get("trajectory")
    if trajectory:
        latest = trajectory[-1]
        reference = latest.get("after_s", {})
        baseline = {**baseline, **{k: latest[k] for k in ("duration_s",) if k in latest}}
        print(f"check: gating against trajectory entry {latest.get('pr', '?')!r}")
    elif trajectory is not None:
        print(
            f"check: baseline {baseline_path!r} has an empty 'trajectory' — the "
            f"gate needs at least one measured entry; {advice}.",
            file=sys.stderr,
        )
        return 2
    else:
        reference = baseline.get("after_s", {})
        if not reference:
            print(
                f"check: baseline {baseline_path!r} has neither a 'trajectory' "
                f"nor a top-level 'after_s'; {advice}.",
                file=sys.stderr,
            )
            return 2
    measured = report["timings_s"]
    status = 0
    for key in ("end_to_end",):
        if key not in reference:
            print(f"check: baseline has no {key!r} entry; skipping", file=sys.stderr)
            continue
        # The baseline was measured at the full-mix duration; scale the
        # allowance when the gate runs the smoke-sized mix instead.
        scale = report["duration_s"] / baseline.get("duration_s", report["duration_s"])
        allowed = reference[key] * scale * (1.0 + tolerance)
        verdict = "ok" if measured[key] <= allowed else "REGRESSION"
        print(
            f"check: {key}: measured {measured[key]:.4f} s vs allowed "
            f"{allowed:.4f} s ({reference[key]:.4f} s baseline x {scale:.2f} "
            f"duration scale + {tolerance:.0%}) -> {verdict}"
        )
        if measured[key] > allowed:
            status = 1
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--duration", type=float, default=120.0, help="trace duration (sim s)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--best-of", type=int, default=5)
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized run: 30 sim-s traces, best-of-2"
    )
    parser.add_argument("--json", metavar="PATH", help="write the timing report as JSON")
    parser.add_argument(
        "--check", metavar="BASELINE", help="compare against a committed BENCH_replay.json"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25, help="allowed fractional regression for --check"
    )
    parser.add_argument(
        "--warm-checkpoints", metavar="DIR",
        help="also time checkpoint-hit replays of the mix through a store "
        "under DIR (the BENCH_replay.json 'warm_s' measurement)",
    )
    args = parser.parse_args(argv)
    duration = 30.0 if args.smoke else args.duration
    best_of = 2 if args.smoke else args.best_of

    print(f"trace-replay macro-benchmark: {', '.join(MIX_WORKLOADS)} @ {duration:g} sim-s")
    report = run_bench(duration, args.seed, best_of)
    print(f"  end-to-end total: {report['timings_s']['end_to_end']:.4f} s")
    if args.warm_checkpoints:
        warm = run_warm_bench(duration, args.seed, best_of, args.warm_checkpoints)
        report["warm_timings_s"] = warm
        cold = report["timings_s"]["end_to_end"]
        print(
            f"  warm end-to-end total: {warm['end_to_end']:.4f} s "
            f"({cold / warm['end_to_end']:.1f}x over cold)"
        )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {args.json}")
    if args.check:
        return check_against_baseline(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
