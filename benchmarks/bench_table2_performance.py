"""Table 2 / Figure 2 — relative performance of AFRAID, RAID 5 and RAID 0.

Per workload: mean I/O time under RAID 0, baseline AFRAID, two MTTDL_x
points, and RAID 5, plus each model's speedup over RAID 5.  The paper's
headline: baseline AFRAID achieved a geometric-mean 4.1x speedup over
RAID 5 across its traces, vs 4.2x for RAID 0 — i.e. AFRAID delivers
essentially unprotected-array performance.
"""

from conftest import BENCH_DURATION_S, BENCH_SEED, run_once

from repro.harness import PolicyLadderEntry, format_table, run_policy_grid
from repro.metrics import geometric_mean
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, MttdlTargetPolicy, NeverScrubPolicy
from repro.traces import workload_names

LADDER = [
    PolicyLadderEntry("raid0", NeverScrubPolicy),
    PolicyLadderEntry("afraid", BaselineAfraidPolicy),
    PolicyLadderEntry("MTTDL_1e7", lambda: MttdlTargetPolicy(1.0e7)),
    PolicyLadderEntry("MTTDL_1e6", lambda: MttdlTargetPolicy(1.0e6)),
    PolicyLadderEntry("raid5", AlwaysRaid5Policy),
]
LABELS = [entry.label for entry in LADDER]


def compute():
    workloads = workload_names()
    grid = run_policy_grid(workloads, LADDER, duration_s=BENCH_DURATION_S, seed=BENCH_SEED)
    return workloads, grid


def test_table2_performance(benchmark, report):
    workloads, grid = run_once(benchmark, compute)

    rows = []
    for workload in workloads:
        raid5_mean = grid[(workload, "raid5")].io_time.mean
        row = [workload, str(grid[(workload, "raid5")].nrequests)]
        for label in LABELS:
            row.append(f"{grid[(workload, label)].mean_io_time_ms:.1f}")
        row.append(f"{raid5_mean / grid[(workload, 'afraid')].io_time.mean:.1f}x")
        rows.append(row)

    speedups = {
        label: geometric_mean(
            [
                grid[(workload, "raid5")].io_time.mean / grid[(workload, label)].io_time.mean
                for workload in workloads
            ]
        )
        for label in LABELS
    }
    rows.append(
        ["geo-mean speedup", ""]
        + [f"{speedups[label]:.2f}x" for label in LABELS]
        + [""]
    )

    report(
        format_table(
            ["workload", "reqs"] + [f"{label} ms" for label in LABELS] + ["afraid vs raid5"],
            rows,
            title=(
                "Table 2 / Figure 2: mean I/O time per workload "
                f"({BENCH_DURATION_S:g}s traces; paper geo-means: RAID0 4.2x, AFRAID 4.1x)"
            ),
        )
    )

    # Shape assertions (the paper's qualitative results):
    # 1. AFRAID ~= RAID 0, far ahead of RAID 5 in the geometric mean.
    assert speedups["afraid"] > 2.5
    assert speedups["afraid"] / speedups["raid0"] > 0.90
    # 2. The MTTDL_x ladder sits between RAID 5 and pure AFRAID.
    assert 1.0 <= speedups["MTTDL_1e6"] <= speedups["afraid"]
    assert speedups["MTTDL_1e7"] <= speedups["MTTDL_1e6"] * 1.05
    # 3. AFRAID beats RAID 5 on every single workload.
    for workload in workloads:
        assert (
            grid[(workload, "afraid")].io_time.mean
            < grid[(workload, "raid5")].io_time.mean
        ), workload
