"""Micro-benchmarks of the simulation kernel itself.

Not a paper experiment — these track the substrate's own performance so
regressions in the event loop, process machinery, or disk model show up
in CI.  Unlike the experiment benches (deterministic, run once), these
use pytest-benchmark's normal multi-round timing.
"""

from repro.disk import DiskIO, IoKind, toy_disk
from repro.sched import DiskDriver
from repro.sim import AllOf, Simulator


def pure_timeouts(n=20_000):
    sim = Simulator()
    for i in range(n):
        sim.timeout(i * 1e-4)
    sim.run()
    return sim.now


def process_chains(n_processes=500, hops=20):
    sim = Simulator()

    def hopper():
        for _ in range(hops):
            yield sim.timeout(0.001)
        return True

    processes = [sim.process(hopper()) for _ in range(n_processes)]
    sim.run()
    return sum(1 for process in processes if process.value)


def disk_io_storm(n_ios=2000):
    sim = Simulator()
    disk = toy_disk(sim, cylinders=256)
    driver = DiskDriver(sim, disk)
    events = [
        driver.submit(DiskIO(IoKind.READ, (i * 37) % (disk.geometry.total_sectors - 8), 8))
        for i in range(n_ios)
    ]
    sim.run_until_triggered(AllOf(sim, events))
    return driver.stats.completed


def test_kernel_timeout_throughput(benchmark):
    result = benchmark(pure_timeouts)
    assert result > 0


def test_kernel_process_throughput(benchmark):
    completed = benchmark(process_chains)
    assert completed == 500


def test_disk_stack_throughput(benchmark):
    completed = benchmark(disk_io_storm)
    assert completed == 2000
