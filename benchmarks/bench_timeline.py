"""Timeline throughput: recording and exporting must stay cheap.

The nemesis loop records every fault, breach, rebuild span, and latency
window into one :class:`~repro.obs.timeline.Timeline`; a 60 s CI soak
produces a few hundred events, but the structure must stay sound at
campaign-fleet scale.  This bench records 100k correlated events and
exports them, asserting throughput floors loose enough for CI noise but
tight enough to catch an accidental O(n^2) (e.g. re-scanning the event
list per record).

Run explicitly with ``pytest benchmarks/bench_timeline.py``; CI runs it
as part of the bench smoke.
"""

import time

from repro.obs import Timeline

N_EVENTS = 100_000

#: Floors in events/second — an order of magnitude under what a dev
#: laptop measures, so only a complexity regression can trip them.
MIN_RECORD_RATE = 100_000
MIN_EXPORT_RATE = 20_000


def build_timeline(n: int) -> Timeline:
    """n correlated events: fault episodes with a rebuild span each."""
    timeline = Timeline(max_events=n + 8)
    open_inject = None
    for i in range(n):
        t = i * 1e-3
        step, disk = i % 4, (i // 4) % 5
        if step == 0:
            open_inject = timeline.fault_injected(t, "disk_failure", disk=disk)
        elif step == 1:
            timeline.rebuild_started(t, disk=disk, cause=open_inject)
        elif step == 2:
            timeline.rebuild_finished(t, disk=disk, stripes=64)
        else:
            timeline.fault_cleared(t, open_inject, resolution="rebuilt")
    return timeline


def test_record_rate():
    start = time.perf_counter()
    timeline = build_timeline(N_EVENTS)
    elapsed = time.perf_counter() - start
    rate = len(timeline) / elapsed
    print(f"\ntimeline record: {rate / 1e6:.2f} M events/s ({elapsed * 1e3:.0f} ms)")
    assert len(timeline) == N_EVENTS
    assert rate > MIN_RECORD_RATE


def test_jsonl_export_rate():
    timeline = build_timeline(N_EVENTS)
    start = time.perf_counter()
    text = timeline.to_jsonl()
    elapsed = time.perf_counter() - start
    rate = len(timeline) / elapsed
    print(f"\ntimeline to_jsonl: {rate / 1e6:.2f} M events/s "
          f"({len(text) / 1e6:.1f} MB in {elapsed * 1e3:.0f} ms)")
    assert rate > MIN_EXPORT_RATE


def test_invariant_check_rate():
    timeline = build_timeline(N_EVENTS)
    start = time.perf_counter()
    problems = timeline.check_invariants()
    elapsed = time.perf_counter() - start
    rate = len(timeline) / elapsed
    print(f"\ntimeline check_invariants: {rate / 1e6:.2f} M events/s "
          f"({elapsed * 1e3:.0f} ms)")
    assert problems == []
    assert rate > MIN_EXPORT_RATE
