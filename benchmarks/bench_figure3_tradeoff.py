"""Figure 3 — how changing availability affects performance.

The geometric-mean trade-off curve across all workloads, both axes
relative to RAID 5 (the top-left point).  The paper reads three points
off this curve: +42% performance for −10% availability, +97% for −23%,
and ~4.1x for giving up a bit more than half.  The assertions below check
the curve's *shape*: monotone, steep in performance early, slow in
availability loss, ending near RAID 0 performance at roughly half the
availability.
"""

from conftest import BENCH_DURATION_S, BENCH_JOBS, BENCH_SEED, bench_cache_dir, run_once

from repro.harness import (
    DEFAULT_MTTDL_TARGETS,
    format_table,
    policy_ladder,
    run_policy_grid,
    tradeoff_curve,
)
from repro.traces import workload_names


def compute():
    workloads = workload_names()
    ladder = policy_ladder(targets=DEFAULT_MTTDL_TARGETS)
    labels = [entry.label for entry in ladder]
    grid = run_policy_grid(
        workloads,
        ladder,
        jobs=BENCH_JOBS,
        cache_dir=bench_cache_dir(),
        duration_s=BENCH_DURATION_S,
        seed=BENCH_SEED,
    )
    points = tradeoff_curve(grid, workloads, labels)
    return points


def test_figure3_tradeoff(benchmark, report):
    points = run_once(benchmark, compute)

    rows = [
        [
            point.label,
            f"{point.relative_performance:.2f}",
            f"{point.relative_availability:.2f}",
            f"{(point.relative_performance - 1) * 100:+.0f}%",
            f"{(point.relative_availability - 1) * 100:+.0f}%",
        ]
        for point in points
    ]
    report(
        format_table(
            ["policy", "rel. perf", "rel. avail", "perf vs RAID5", "avail vs RAID5"],
            rows,
            title=(
                "Figure 3: performance vs availability, geometric means over all "
                "workloads (paper: +42%/-10%, +97%/-23%, ~4.1x at just under half)"
            ),
        )
    )

    by_label = {point.label: point for point in points}
    raid5 = by_label["raid5"]
    afraid = by_label["afraid"]
    assert raid5.relative_performance == 1.0
    assert raid5.relative_availability == 1.0

    # Moving down the ladder, performance never drops and availability
    # never rises (within run-to-run noise).
    performances = [point.relative_performance for point in points]
    availabilities = [point.relative_availability for point in points]
    for earlier, later in zip(performances, performances[1:]):
        assert later >= earlier * 0.93, (performances,)
    for earlier, later in zip(availabilities, availabilities[1:]):
        assert later <= earlier * 1.02, (availabilities,)

    # Pure AFRAID: several-fold performance for roughly half availability.
    assert afraid.relative_performance > 2.5
    assert 0.15 < afraid.relative_availability < 0.75

    # The paper's key selling point: there are intermediate policies that
    # buy real performance for modest availability loss (its curve reads
    # +42% for -10%; ours is steeper because the scaled-down traces have
    # proportionally larger exposure windows, but the same knee exists).
    assert any(
        point.relative_performance > 1.35 and point.relative_availability >= 0.65
        for point in points
    ), rows
