"""Table 4 — mean time to data loss per workload and policy.

The paper's findings, all asserted below:

* baseline AFRAID is uniformly better than an unprotected array, with a
  geometric-mean disk-related MTTDL several times RAID 0's;
* the MTTDL_x policy's achieved disk-related MTTDL is never more than 5%
  below its target;
* overall MTTDL is capped by the 2M-hour support components for
  everything except baseline AFRAID under the busiest workloads.
"""

from conftest import BENCH_DURATION_S, BENCH_SEED, run_once

from repro.availability import CONSERVATIVE_SUPPORT, TABLE_1, raid5_mttdl_catastrophic
from repro.harness import PolicyLadderEntry, format_quantity, format_table, run_policy_grid
from repro.metrics import geometric_mean
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy, MttdlTargetPolicy, NeverScrubPolicy
from repro.traces import workload_names

TARGETS = (1.0e7, 1.0e6)
LADDER = [
    PolicyLadderEntry("raid0", NeverScrubPolicy),
    PolicyLadderEntry("afraid", BaselineAfraidPolicy),
    PolicyLadderEntry("MTTDL_1e7", lambda: MttdlTargetPolicy(TARGETS[0])),
    PolicyLadderEntry("MTTDL_1e6", lambda: MttdlTargetPolicy(TARGETS[1])),
    PolicyLadderEntry("raid5", AlwaysRaid5Policy),
]
LABELS = [entry.label for entry in LADDER]


def compute():
    workloads = workload_names()
    grid = run_policy_grid(workloads, LADDER, duration_s=BENCH_DURATION_S, seed=BENCH_SEED)
    return workloads, grid


def test_table4_mttdl(benchmark, report):
    workloads, grid = run_once(benchmark, compute)

    rows = []
    for workload in workloads:
        row = [workload]
        for label in LABELS:
            row.append(format_quantity(grid[(workload, label)].mttdl_disk_h))
        row.append(format_quantity(grid[(workload, "afraid")].mttdl_overall_h))
        rows.append(row)
    geo = {
        label: geometric_mean([grid[(w, label)].mttdl_disk_h for w in workloads])
        for label in LABELS
        if label != "raid5"  # raid5's disk MTTDL is a constant 4.17e9
    }
    rows.append(
        ["geo-mean"]
        + [format_quantity(geo[label]) if label in geo else "4.2e+09" for label in LABELS]
        + [""]
    )

    report(
        format_table(
            ["workload"] + [f"{label} (h)" for label in LABELS] + ["afraid overall (h)"],
            rows,
            title="Table 4: disk-related MTTDL per workload and policy",
        )
    )

    raid5_value = raid5_mttdl_catastrophic(5, TABLE_1.mttf_disk_h, TABLE_1.mttr_h)
    for workload in workloads:
        afraid = grid[(workload, "afraid")]
        raid0 = grid[(workload, "raid0")]
        # Paper: "even the baseline AFRAID design is uniformly better than
        # an unprotected disk array".
        assert afraid.mttdl_disk_h >= raid0.mttdl_disk_h * 0.999, workload
        # Paper: "the disk-related MTTDL was never more than 5% below its
        # target" (a target above RAID 5's own value is unreachable by
        # definition, but none of ours is).
        for target, label in zip(TARGETS, ("MTTDL_1e7", "MTTDL_1e6")):
            achieved = grid[(workload, label)].mttdl_disk_h
            assert achieved >= 0.95 * min(target, raid5_value), (workload, label)

    # Paper: AFRAID's geometric-mean MTTDL is several times RAID 0's
    # (4.3x in the paper) and within an order of magnitude of RAID 5's
    # support-capped overall value.
    assert geo["afraid"] / geo["raid0"] > 2.0
    overall_ratio = geometric_mean(
        [
            grid[(w, "afraid")].mttdl_overall_h / grid[(w, "raid5")].mttdl_overall_h
            for w in workloads
        ]
    )
    assert 0.15 < overall_ratio < 1.0
    # Paper: support components limit overall MTTDL to ~2M hours for all
    # but baseline AFRAID on the busiest workloads.
    for workload in workloads:
        assert grid[(workload, "raid5")].mttdl_overall_h > 0.99 * CONSERVATIVE_SUPPORT.mttdl_h
        # A 1e7-hour disk target leaves overall MTTDL support-dominated:
        # combine(1e7, 2e6) = 1.67e6 hours.
        assert grid[(workload, "MTTDL_1e7")].mttdl_overall_h >= 1.2e6, workload
