"""Sections 3.3-3.6 — the support-component, NVRAM and power analyses.

Regenerates every number the paper derives outside its simulation: the
support-hardware MDLR comparison, the PrestoServe NVRAM yardstick, the
external-power/UPS story, and the "how much availability is enough"
argument.
"""

import pytest
from conftest import run_once

from repro.availability import (
    CONSERVATIVE_SUPPORT,
    GIBSON_SUPPORT,
    MAINS_ONLY,
    PRESTOSERVE,
    TABLE_1,
    WITH_UPS,
    combine_mttdl,
)
from repro.availability.lifetime import loss_probability_years
from repro.availability.models import single_disk_mdlr
from repro.availability.support import TYPICAL_COMPONENTS
from repro.harness import format_table


def compute():
    params = TABLE_1
    return {
        "support_2m_mdlr": CONSERVATIVE_SUPPORT.mdlr(5, params.disk_bytes),
        "support_150k_mdlr": GIBSON_SUPPORT.mdlr(5, params.disk_bytes),
        "itemised_mttdl": TYPICAL_COMPONENTS.mttdl_h,
        "prestoserve_mdlr": PRESTOSERVE.mdlr,
        "mains_mttdl": MAINS_ONLY.mttdl_h,
        "ups_mttdl": WITH_UPS.mttdl_h,
        "single_disk_mdlr_1m": single_disk_mdlr(params.disk_bytes, 1.0e6),
        "overall_with_afraid_5pct": combine_mttdl(8.0e6, CONSERVATIVE_SUPPORT.mttdl_h),
        "p_loss_3yr_support_only": loss_probability_years(CONSERVATIVE_SUPPORT.mttdl_h, 3.0),
    }


def test_section3_support(benchmark, report):
    result = run_once(benchmark, compute)

    rows = [
        ["support MDLR @ 2M h (paper: 4.0 KB/h)", f"{result['support_2m_mdlr'] / 1000:.1f} KB/h"],
        ["support MDLR @ 150k h (paper: 53 KB/h)", f"{result['support_150k_mdlr'] / 1000:.1f} KB/h"],
        ["itemised support example MTTDL", f"{result['itemised_mttdl']:.2e} h"],
        ["PrestoServe NVRAM MDLR (paper: 67 B/h)", f"{result['prestoserve_mdlr']:.0f} B/h"],
        ["mains-only power MTTDL (paper: 43k h)", f"{result['mains_mttdl']:.0f} h"],
        ["with 200k-h UPS (paper: 2M h)", f"{result['ups_mttdl']:.2e} h"],
        ["one bare 2 GB disk MDLR (paper: 2-4 KB/h)", f"{result['single_disk_mdlr_1m'] / 1000:.1f} KB/h"],
        ["overall MTTDL, AFRAID @ 5% exposure", f"{result['overall_with_afraid_5pct']:.2e} h"],
        ["P(any loss in 3 yr), support-limited array", f"{result['p_loss_3yr_support_only']:.2%}"],
    ]
    report(format_table(["quantity", "value"], rows, title="Sections 3.3-3.6: non-disk availability"))

    assert result["support_2m_mdlr"] == pytest.approx(4000, rel=0.01)
    assert result["support_150k_mdlr"] == pytest.approx(53_333, rel=0.01)
    assert result["prestoserve_mdlr"] == pytest.approx(67, rel=0.01)
    assert result["mains_mttdl"] == pytest.approx(43_000, rel=0.01)
    assert result["ups_mttdl"] == pytest.approx(2.0e6, rel=0.01)
    # The punchline: PrestoServe-class NVRAM already loses more per hour
    # than AFRAID's sub-byte unprotected-data contribution (Table 3).
    assert result["prestoserve_mdlr"] > 10
