"""Ablation — host-driver queue discipline.

The paper fixes the host driver at C-LOOK [Worthington94a] (§4.1).  This
sweeps the discipline under a heavy trace to show how much the choice
matters next to the AFRAID-vs-RAID 5 effect it frames: seek-aware
ordering (C-LOOK/SSTF/LOOK) shaves queueing time relative to FCFS, but
the parity-update policy dominates by an order of magnitude.
"""

from conftest import BENCH_DURATION_S, BENCH_SEED, run_once

from repro.array.factory import build_array
from repro.harness import format_table
from repro.harness.replay import replay_trace
from repro.policy import AlwaysRaid5Policy, BaselineAfraidPolicy
from repro.sched import ClookScheduler, FcfsScheduler, LookScheduler, SstfScheduler
from repro.sim import Simulator
from repro.traces import make_trace

WORKLOAD = "AS400-1"
DISCIPLINES = {
    "fcfs": FcfsScheduler,
    "clook": ClookScheduler,
    "sstf": SstfScheduler,
    "look": LookScheduler,
}


def run_one(discipline_cls, policy_cls):
    sim = Simulator()
    array = build_array(sim, policy_cls(), host_scheduler=discipline_cls())
    trace = make_trace(
        WORKLOAD,
        duration_s=BENCH_DURATION_S,
        address_space_sectors=array.layout.total_data_sectors,
        seed=BENCH_SEED,
    )
    outcome = replay_trace(sim, array, trace)
    return 1e3 * sum(outcome.io_times) / len(outcome.io_times)


def compute():
    grid = {}
    for name, discipline_cls in DISCIPLINES.items():
        grid[(name, "afraid")] = run_one(discipline_cls, BaselineAfraidPolicy)
        grid[(name, "raid5")] = run_one(discipline_cls, AlwaysRaid5Policy)
    return grid


def test_ablation_host_scheduler(benchmark, report):
    grid = run_once(benchmark, compute)

    rows = [
        [name, f"{grid[(name, 'afraid')]:.2f}", f"{grid[(name, 'raid5')]:.2f}"]
        for name in DISCIPLINES
    ]
    report(
        format_table(
            ["host discipline", "AFRAID mean I/O ms", "RAID 5 mean I/O ms"],
            rows,
            title=f"Ablation: host queue discipline on {WORKLOAD} (paper uses C-LOOK)",
        )
    )

    # Seek-aware ordering helps or at worst ties FCFS under queueing.
    assert grid[("clook", "raid5")] <= grid[("fcfs", "raid5")] * 1.10
    # The policy effect dwarfs the scheduling effect for every discipline.
    for name in DISCIPLINES:
        policy_gain = grid[(name, "raid5")] / grid[(name, "afraid")]
        assert policy_gain > 2.0, name
    scheduler_spread = max(grid[(n, "afraid")] for n in DISCIPLINES) / min(
        grid[(n, "afraid")] for n in DISCIPLINES
    )
    assert scheduler_spread < 2.0
