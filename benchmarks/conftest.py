"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints it to the terminal (bypassing pytest's capture), so running

    pytest benchmarks/ --benchmark-only

produces the full paper-style report alongside the timing table.  The
benches also assert the *shape* of each result — who wins, by roughly
what factor — so they double as regression tests for the reproduction.
"""

from __future__ import annotations

import pytest

#: One simulated duration for all trace-driven benches, long enough for
#: dozens of burst/idle cycles on every catalog workload.
BENCH_DURATION_S = 60.0
BENCH_SEED = 1


@pytest.fixture()
def report(capsys):
    """Print a paper-style table straight to the terminal."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulation benches are deterministic and heavy; repeating them adds
    nothing but wall-clock, so every bench uses a single round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
