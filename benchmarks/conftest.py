"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints it to the terminal (bypassing pytest's capture), so running

    pytest benchmarks/ --benchmark-only

produces the full paper-style report alongside the timing table.  The
benches also assert the *shape* of each result — who wins, by roughly
what factor — so they double as regression tests for the reproduction.
"""

from __future__ import annotations

import os

import pytest

#: One simulated duration for all trace-driven benches, long enough for
#: dozens of burst/idle cycles on every catalog workload.
BENCH_DURATION_S = 60.0
BENCH_SEED = 1

#: Worker processes for grid-shaped benches (Figures 3/4).  Defaults to
#: serial so timing numbers stay comparable; export AFRAID_BENCH_JOBS=N
#: to fan cells out over the parallel sweep engine.
BENCH_JOBS = int(os.environ.get("AFRAID_BENCH_JOBS", "1"))


def bench_cache_dir() -> str | None:
    """Result-cache directory for grid benches (off unless exported).

    Export AFRAID_BENCH_CACHE=.repro-cache to make figure reruns
    simulate only the cells whose code or config changed.
    """
    return os.environ.get("AFRAID_BENCH_CACHE") or None


@pytest.fixture()
def report(capsys):
    """Print a paper-style table straight to the terminal."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Simulation benches are deterministic and heavy; repeating them adds
    nothing but wall-clock, so every bench uses a single round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
