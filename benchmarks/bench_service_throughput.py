"""Serve-daemon throughput benchmark: warm-cache latency under fan-in.

The serve daemon's contract is that previously-computed cells are
answered from the content-addressed cache *in the submitting thread* —
no queue, no dispatcher, no worker pool.  This bench measures that
warm path end-to-end through real HTTP: it starts a daemon on an
ephemeral port, warms the cache with one simulated job, then fires
``--requests`` concurrent cached-cell submissions from ``--threads``
client threads and reports the latency distribution and sustained
request rate.  A second phase probes the backpressure path: a burst of
*cold* submissions against a small ``--queue-limit`` must draw explicit
429 rejections, never unbounded queueing.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py \
        --smoke --json service-timings.json --p99-limit 0.5     # CI gate

``--p99-limit`` exits non-zero when the warm-cache p99 exceeds the bound
(seconds), so cache-path regressions cannot land silently.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import threading
import time

from repro.service import JobManager, ServiceClient, ServiceError, ServiceServer

WORKLOAD = "hplajw"


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample list."""
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


def warm_payload(args) -> dict:
    return {
        "cells": [{"workload": WORKLOAD, "policy": "afraid"}],
        "duration_s": args.duration,
        "seed": args.seed,
    }


def run_warm_phase(client: ServiceClient, args) -> dict:
    """Fire the concurrent cached-cell fan-in and collect latencies."""
    latencies: list[float] = []
    errors: list[str] = []
    lock = threading.Lock()
    start_gate = threading.Event()
    payload = warm_payload(args)
    per_thread = args.requests // args.threads
    remainder = args.requests - per_thread * args.threads

    def hammer(extra: int) -> None:
        start_gate.wait()
        mine = []
        for _ in range(per_thread + extra):
            begin = time.perf_counter()
            try:
                snapshot = client.submit_with_backoff(payload)
            except ServiceError as exc:  # pragma: no cover - failure reporting
                with lock:
                    errors.append(str(exc))
                continue
            elapsed = time.perf_counter() - begin
            if snapshot["state"] != "done" or snapshot["cells_cached"] != 1:
                with lock:
                    errors.append(f"warm request was not a cache hit: {snapshot}")
                continue
            mine.append(elapsed)
        with lock:
            latencies.extend(mine)

    threads = [
        threading.Thread(target=hammer, args=(1 if i < remainder else 0,))
        for i in range(args.threads)
    ]
    for thread in threads:
        thread.start()
    started = time.perf_counter()
    start_gate.set()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started

    if errors:
        raise SystemExit(f"warm phase failed ({len(errors)} errors): {errors[0]}")
    return {
        "requests": len(latencies),
        "threads": args.threads,
        "wall_s": wall_s,
        "rps": len(latencies) / wall_s if wall_s > 0 else float("inf"),
        "p50_s": percentile(latencies, 50),
        "p95_s": percentile(latencies, 95),
        "p99_s": percentile(latencies, 99),
        "max_s": max(latencies),
    }


def run_backpressure_probe(client: ServiceClient, args) -> dict:
    """Burst cold submissions at a bounded queue; count explicit 429s."""
    accepted: list[str] = []
    rejected = 0
    for seed in range(args.probe_submissions):
        payload = {
            "cells": [{"workload": WORKLOAD, "policy": "afraid"}],
            "duration_s": args.duration,
            "seed": args.seed + 1 + seed,  # distinct seeds: guaranteed cold
        }
        try:
            accepted.append(client.submit(payload)["id"])
        except ServiceError as exc:
            if exc.status != 429:
                raise
            rejected += 1
    for job_id in accepted:
        client.cancel(job_id)
    return {
        "submissions": args.probe_submissions,
        "accepted": len(accepted),
        "rejected_429": rejected,
        "queue_limit": args.queue_limit,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1000,
                        help="concurrent warm-cache submissions (default 1000)")
    parser.add_argument("--threads", type=int, default=32,
                        help="client threads issuing them (default 32)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="daemon worker processes (default 2)")
    parser.add_argument("--queue-limit", type=int, default=8,
                        help="daemon admission bound for the 429 probe")
    parser.add_argument("--probe-submissions", type=int, default=32,
                        help="cold submissions in the backpressure burst")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="simulated seconds per cell (warm-up cost only)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: a fresh temp dir)")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="write the report as JSON to this path")
    parser.add_argument("--p99-limit", type=float, default=None,
                        help="exit 1 if warm p99 exceeds this many seconds")
    parser.add_argument("--smoke", action="store_true",
                        help="CI sizing: fewer threads, shorter warm-up")
    args = parser.parse_args(argv)

    if args.smoke:
        args.threads = min(args.threads, 16)
        args.duration = min(args.duration, 2.0)

    if args.cache_dir is None:
        import tempfile

        args.cache_dir = tempfile.mkdtemp(prefix="afraid-bench-cache-")

    manager = JobManager(
        jobs=args.jobs, cache_dir=args.cache_dir, queue_limit=args.queue_limit
    )
    server = ServiceServer(("127.0.0.1", 0), manager)
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    client = ServiceClient(server.url, timeout=60.0)

    try:
        print(f"daemon on {server.url}: warming the cache "
              f"({WORKLOAD}/afraid, {args.duration:g} simulated s)")
        warm_id = client.submit(warm_payload(args))["id"]
        final = client.wait(warm_id, timeout=600.0)
        if final["state"] != "done":
            raise SystemExit(f"warm-up job ended {final['state']}")

        print(f"firing {args.requests} warm requests from {args.threads} threads")
        warm = run_warm_phase(client, args)
        probe = run_backpressure_probe(client, args)
    finally:
        server.shutdown()
        server.server_close()
        manager.shutdown(drain=False)
        server_thread.join(5.0)

    report = {"warm": warm, "backpressure": probe}
    print(f"service throughput: {warm['requests']} warm requests, "
          f"{warm['threads']} client threads")
    print(f"  warm latency: p50 {warm['p50_s'] * 1e3:.2f} ms  "
          f"p95 {warm['p95_s'] * 1e3:.2f} ms  "
          f"p99 {warm['p99_s'] * 1e3:.2f} ms  "
          f"max {warm['max_s'] * 1e3:.2f} ms")
    print(f"  sustained: {warm['rps']:.0f} req/s over {warm['wall_s']:.2f} s")
    print(f"  backpressure: {probe['rejected_429']}/{probe['submissions']} cold "
          f"submissions drew 429 at queue_limit {probe['queue_limit']}")

    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"  wrote {args.json_out}")

    if probe["rejected_429"] == 0:
        print("FAIL: the cold burst never hit backpressure; "
              "queue bound is not being enforced", file=sys.stderr)
        return 1
    if args.p99_limit is not None and warm["p99_s"] > args.p99_limit:
        print(f"FAIL: warm p99 {warm['p99_s']:.3f} s exceeds the "
              f"--p99-limit bound {args.p99_limit:g} s", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
