"""Table 3 — mean data loss rates.

Per workload: baseline AFRAID's mean parity lag and the resulting
MDLR_unprotected (eq. 4), next to the catastrophic (eq. 3) and
support-hardware contributions.  The paper's findings:

* MDLR_unprotected is below 1 byte/hour for every trace except the heavy
  ATT load;
* it drops below 0.1 bytes/hour under any MTTDL_x policy;
* all of it is dwarfed by the ~4 KB/hour support-component MDLR, so
  AFRAID and RAID 5 have essentially identical overall MDLRs.
"""

import pytest
from conftest import BENCH_DURATION_S, BENCH_SEED, run_once

from repro.availability import CONSERVATIVE_SUPPORT, TABLE_1
from repro.harness import PolicyLadderEntry, format_table, run_policy_grid
from repro.policy import BaselineAfraidPolicy, MttdlTargetPolicy
from repro.traces import workload_names

LADDER = [
    PolicyLadderEntry("afraid", BaselineAfraidPolicy),
    PolicyLadderEntry("MTTDL_1e7", lambda: MttdlTargetPolicy(1.0e7)),
]
#: The paper's "heavy load" exceptions, called out in §4.3/§4.4 as the
#: workloads with the fewest idle periods.
HEAVY = {"ATT", "netware", "cello-news", "AS400-1"}


def compute():
    workloads = workload_names()
    grid = run_policy_grid(workloads, LADDER, duration_s=BENCH_DURATION_S, seed=BENCH_SEED)
    return workloads, grid


def test_table3_mdlr(benchmark, report):
    workloads, grid = run_once(benchmark, compute)
    support_mdlr = CONSERVATIVE_SUPPORT.mdlr(5, TABLE_1.disk_bytes)

    rows = []
    for workload in workloads:
        afraid = grid[(workload, "afraid")]
        policed = grid[(workload, "MTTDL_1e7")]
        rows.append(
            [
                workload,
                f"{afraid.mean_parity_lag_bytes / 1024:.1f}",
                f"{afraid.mdlr_unprotected_bytes_per_h:.3f}",
                f"{policed.mdlr_unprotected_bytes_per_h:.3f}",
                f"{afraid.mdlr_disk_bytes_per_h:.3f}",
                f"{afraid.mdlr_overall_bytes_per_h:.0f}",
            ]
        )
    report(
        format_table(
            [
                "workload",
                "mean lag KB",
                "MDLR_unprot B/h (afraid)",
                "B/h (MTTDL_1e7)",
                "disk MDLR B/h",
                "overall B/h",
            ],
            rows,
            title=(
                "Table 3: mean data loss rates "
                f"(support contributes {support_mdlr:.0f} B/h; eq.(3) catastrophic 0.8 B/h)"
            ),
        )
    )

    for workload in workloads:
        afraid = grid[(workload, "afraid")]
        policed = grid[(workload, "MTTDL_1e7")]
        # Paper: "MDLR_unprotected contributes less than one byte per hour"
        # for all but the heavy loads.
        if workload not in HEAVY:
            assert afraid.mdlr_unprotected_bytes_per_h < 1.0, workload
        # Paper: "drops to less than 0.1 bytes/hour if any of the MTTDL_x
        # policies are used".
        assert policed.mdlr_unprotected_bytes_per_h < 0.1, workload
        # Support dominates by orders of magnitude: AFRAID's and RAID 5's
        # overall MDLRs are essentially identical.
        assert afraid.mdlr_overall_bytes_per_h == pytest.approx(support_mdlr, rel=0.01)
