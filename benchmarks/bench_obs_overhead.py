"""The disabled-observability path must be near-free.

The tracer hooks sit inside :meth:`DiskDriver._pump`, the hottest loop in
the simulator.  This bench times the stock driver (``tracer=None``) against
a control subclass whose pump has the tracer branches deleted outright, and
asserts the disabled path costs < 3% — the bar the hooks were designed to
(one attribute load and one ``is not None`` test per command).

Run explicitly with ``pytest benchmarks/bench_obs_overhead.py``; CI runs it
as part of the bench smoke.
"""

import time

from repro.disk import DiskIO, IoKind, toy_disk
from repro.sched import DiskDriver
from repro.sim import AllOf, Simulator

#: Generous vs the design target (~1.00x): absorbs timer noise in CI while
#: still catching anything that puts real work on the disabled path.
MAX_OVERHEAD_RATIO = 1.03

N_IOS = 4000
ROUNDS = 7


class UninstrumentedDriver(DiskDriver):
    """The pre-observability pump, kept verbatim as the timing control."""

    def _pump(self):
        try:
            while self.scheduler:
                head = self.disk.geometry.physical_to_lba(self.disk.current_cylinder, 0, 0)
                (io, completion, submit_time), _position = self.scheduler.pop(head)
                self.stats.queue_time += self.sim.now - submit_time
                try:
                    breakdown = yield self.disk.execute(io)
                except Exception as exc:  # mirrors DiskFailedError handling
                    self.stats.failed += 1
                    completion.fail(exc)
                else:
                    self.stats.completed += 1
                    completion.succeed(breakdown)
                    while self.disk.busy:
                        yield self.sim.timeout(self.disk.busy_until - self.sim.now)
        finally:
            self._pumping = False


def io_storm(driver_cls):
    sim = Simulator()
    disk = toy_disk(sim, cylinders=256)
    driver = driver_cls(sim, disk)
    events = [
        driver.submit(DiskIO(IoKind.READ, (i * 37) % (disk.geometry.total_sectors - 8), 8))
        for i in range(N_IOS)
    ]
    sim.run_until_triggered(AllOf(sim, events))
    assert driver.stats.completed == N_IOS


def best_of(driver_cls, rounds=ROUNDS):
    """Minimum wall-clock over ``rounds`` runs — the standard estimator
    for 'how fast can this go', immune to one-sided scheduling noise."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        io_storm(driver_cls)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracer_overhead_is_under_three_percent():
    # Interleave a warm-up of each so JIT-less CPython cache effects
    # (bytecode, allocator arenas) hit both variants equally.
    io_storm(UninstrumentedDriver)
    io_storm(DiskDriver)
    control = best_of(UninstrumentedDriver)
    stock = best_of(DiskDriver)
    ratio = stock / control
    print(f"\ndisabled-path overhead: {ratio:.4f}x "
          f"(stock {stock * 1e3:.1f} ms vs control {control * 1e3:.1f} ms)")
    assert ratio < MAX_OVERHEAD_RATIO, (
        f"disabled observability path costs {ratio:.3f}x "
        f"(allowed < {MAX_OVERHEAD_RATIO}x)"
    )
