"""The disabled-observability path must be near-free.

The tracer hooks sit inside :meth:`DiskDriver._pump`, the hottest loop in
the simulator.  This bench times the stock driver (``tracer=None``) against
a control subclass whose pump has the tracer branches deleted outright, and
asserts the disabled path costs < 3% — the bar the hooks were designed to
(one attribute load and one ``is not None`` test per command).

Run explicitly with ``pytest benchmarks/bench_obs_overhead.py``; CI runs it
as part of the bench smoke.
"""

import time

from repro.array import toy_array
from repro.array.controller import DiskArray
from repro.array.request import ArrayRequest
from repro.disk import DiskIO, IoKind, toy_disk
from repro.sched import DiskDriver
from repro.sim import AllOf, Simulator

#: Generous vs the design target (~1.00x): absorbs timer noise in CI while
#: still catching anything that puts real work on the disabled path.
MAX_OVERHEAD_RATIO = 1.03

N_IOS = 4000
ROUNDS = 7


class UninstrumentedDriver(DiskDriver):
    """The pre-observability pump, kept verbatim as the timing control."""

    def _pump(self):
        try:
            while self.scheduler:
                head = self.disk.geometry.physical_to_lba(self.disk.current_cylinder, 0, 0)
                (io, completion, submit_time), _position = self.scheduler.pop(head)
                self.stats.queue_time += self.sim.now - submit_time
                try:
                    breakdown = yield self.disk.execute(io)
                except Exception as exc:  # mirrors DiskFailedError handling
                    self.stats.failed += 1
                    completion.fail(exc)
                else:
                    self.stats.completed += 1
                    completion.succeed(breakdown)
                    while self.disk.busy:
                        yield self.sim.timeout(self.disk.busy_until - self.sim.now)
        finally:
            self._pumping = False


def io_storm(driver_cls):
    sim = Simulator()
    disk = toy_disk(sim, cylinders=256)
    driver = driver_cls(sim, disk)
    events = [
        driver.submit(DiskIO(IoKind.READ, (i * 37) % (disk.geometry.total_sectors - 8), 8))
        for i in range(N_IOS)
    ]
    sim.run_until_triggered(AllOf(sim, events))
    assert driver.stats.completed == N_IOS


def best_of(driver_cls, rounds=ROUNDS):
    """Minimum wall-clock over ``rounds`` runs — the standard estimator
    for 'how fast can this go', immune to one-sided scheduling noise."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        io_storm(driver_cls)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracer_overhead_is_under_three_percent():
    # Interleave a warm-up of each so JIT-less CPython cache effects
    # (bytecode, allocator arenas) hit both variants equally.
    io_storm(UninstrumentedDriver)
    io_storm(DiskDriver)
    control = best_of(UninstrumentedDriver)
    stock = best_of(DiskDriver)
    ratio = stock / control
    print(f"\ndisabled-path overhead: {ratio:.4f}x "
          f"(stock {stock * 1e3:.1f} ms vs control {control * 1e3:.1f} ms)")
    assert ratio < MAX_OVERHEAD_RATIO, (
        f"disabled observability path costs {ratio:.3f}x "
        f"(allowed < {MAX_OVERHEAD_RATIO}x)"
    )


# -- registry / exposure-monitor branches on the array write path ----------------------

N_WRITES = 900


class UninstrumentedArray(DiskArray):
    """The pre-exposure write path and lag bookkeeping, as the control.

    Identical to the stock methods with the ``self.exposure`` branches
    deleted outright (the tracer branch stays: it belongs to the test
    above).  Timing this against a stock array whose ``exposure`` is
    ``None`` isolates what the exposure/registry hooks cost when disabled.
    """

    def _write_afraid(self, request, runs_by_stripe):
        newly_marked = False
        for stripe, runs in runs_by_stripe.items():
            for run in runs:
                for sub_unit in self._sub_units_of(run):
                    newly_marked |= self.marks.mark(stripe, sub_unit)
        if newly_marked:
            self._lag_changed()
        events = []
        for runs in runs_by_stripe.values():
            for run in runs:
                events.append(
                    self.drivers[run.disk].submit(
                        DiskIO(IoKind.WRITE, run.disk_lba, run.nsectors)
                    )
                )
                self.stats.foreground_data_writes += 1
        yield AllOf(self.sim, events)
        if self.functional is not None:
            self.functional.write(
                request.offset_sectors, self._payload(request), update_parity=False
            )
        self.policy.on_stripes_marked()

    def _lag_changed(self):
        if not self._finished:
            lag = self.parity_lag_bytes
            self.lag_tracker.record(self.sim.now, lag)
            if self.tracer is not None:
                self.tracer.counter("dirty_stripes", float(len(self.marks.marked_stripes)))
                self.tracer.counter("parity_lag_bytes", lag)


def write_storm(control: bool):
    sim = Simulator()
    array = toy_array(sim, with_functional=False)
    if control:
        array.__class__ = UninstrumentedArray
    limit = array.layout.total_data_sectors - 8
    for i in range(N_WRITES):
        sim.run_until_triggered(
            array.submit(ArrayRequest(IoKind.WRITE, (i * 37) % limit, 8))
        )
    assert array.stats.writes_completed == N_WRITES


def best_of_storm(control: bool, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        write_storm(control)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_exposure_registry_overhead_is_under_three_percent():
    write_storm(control=True)
    write_storm(control=False)
    control = best_of_storm(control=True)
    stock = best_of_storm(control=False)
    ratio = stock / control
    print(f"\ndisabled registry/exposure overhead: {ratio:.4f}x "
          f"(stock {stock * 1e3:.1f} ms vs control {control * 1e3:.1f} ms)")
    assert ratio < MAX_OVERHEAD_RATIO, (
        f"disabled exposure/registry path costs {ratio:.3f}x "
        f"(allowed < {MAX_OVERHEAD_RATIO}x)"
    )
