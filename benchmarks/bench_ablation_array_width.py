"""Ablation — array width.

§1.1: "Since the overhead of the parity update is linear with the number
of disks in a stripe group, AFRAID is best suited to arrays with smaller
numbers of disks."  This sweeps the member count: a scrub reads N data
units, so wider arrays spend more on each rebuild, recover redundancy
more slowly, and expose more data per dirty stripe — while RAID 5's
small-write cost stays at 4 I/Os regardless of width.
"""

from conftest import BENCH_DURATION_S, BENCH_SEED, run_once

from repro.array.factory import build_array
from repro.harness import format_table
from repro.harness.replay import replay_trace
from repro.policy import BaselineAfraidPolicy
from repro.sim import Simulator
from repro.traces import make_trace

WORKLOAD = "cello-usr"
WIDTHS = (3, 5, 8, 12)


def run_one(ndisks):
    sim = Simulator()
    array = build_array(sim, BaselineAfraidPolicy(), ndisks=ndisks)
    trace = make_trace(
        WORKLOAD,
        duration_s=BENCH_DURATION_S,
        address_space_sectors=array.layout.total_data_sectors,
        seed=BENCH_SEED,
    )
    outcome = replay_trace(sim, array, trace)
    scrub_ios_per_stripe = (
        array.stats.scrub_data_reads / array.stats.stripes_scrubbed
        if array.stats.stripes_scrubbed
        else 0.0
    )
    return {
        "ndisks": ndisks,
        "mean_io_ms": 1e3 * sum(outcome.io_times) / len(outcome.io_times),
        "unprotected": array.lag_tracker.unprotected_fraction,
        "lag_per_stripe_kb": array.layout.data_units_per_stripe * array.unit_bytes / 1024,
        "scrub_ios_per_stripe": scrub_ios_per_stripe,
        "stripes_scrubbed": array.stats.stripes_scrubbed,
    }


def compute():
    return [run_one(width) for width in WIDTHS]


def test_ablation_array_width(benchmark, report):
    results = run_once(benchmark, compute)

    rows = [
        [
            str(result["ndisks"]),
            f"{result['mean_io_ms']:.2f}",
            f"{result['unprotected']:.1%}",
            f"{result['lag_per_stripe_kb']:.0f}",
            f"{result['scrub_ios_per_stripe']:.1f}",
            str(result["stripes_scrubbed"]),
        ]
        for result in results
    ]
    report(
        format_table(
            ["disks", "mean I/O ms", "unprot time", "exposed KB/stripe", "scrub I/Os per stripe", "scrubbed"],
            rows,
            title=f"Ablation: array width on {WORKLOAD} (paper: AFRAID suits small arrays)",
        )
    )

    import pytest

    by_width = {result["ndisks"]: result for result in results}
    # Scrub cost is linear in width: N data reads per stripe (a stripe cut
    # off by the measurement horizon can skew the ratio by one part in a
    # few hundred, hence the tolerance).
    assert by_width[12]["scrub_ios_per_stripe"] == pytest.approx(11.0, rel=0.02)
    assert by_width[3]["scrub_ios_per_stripe"] == pytest.approx(2.0, rel=0.02)
    # Vulnerable data per dirty stripe grows linearly with width too.
    assert by_width[12]["lag_per_stripe_kb"] == 11 * 8
    assert by_width[3]["lag_per_stripe_kb"] == 2 * 8
    # The paper's point: wider arrays carry (weakly) more exposure under
    # the same workload.
    assert by_width[12]["unprotected"] >= 0.5 * by_width[3]["unprotected"]
