"""Figure 4 — per-trace mean I/O time across the policy spectrum.

The paper's reading of this figure: highly bursty workloads (snake,
hplajw, cello-usr) show relatively little change in mean I/O time as the
MTTDL_x target tightens — they have enough idle time that the policy
rarely needs to revert to RAID 5 — while workloads with fewer idle
periods and more writes (AS400-1, ATT) decline smoothly across the whole
range between RAID 5 and pure AFRAID.
"""

from conftest import BENCH_DURATION_S, BENCH_JOBS, BENCH_SEED, bench_cache_dir, run_once

from repro.harness import (
    DEFAULT_MTTDL_TARGETS,
    format_table,
    policy_ladder,
    run_policy_grid,
)
from repro.traces import workload_names

BURSTY = ("hplajw", "snake", "cello-usr", "AS400-4")
BUSY = ("ATT", "AS400-1", "netware")


def compute():
    workloads = workload_names()
    ladder = policy_ladder(targets=DEFAULT_MTTDL_TARGETS)
    labels = [entry.label for entry in ladder]
    grid = run_policy_grid(
        workloads,
        ladder,
        jobs=BENCH_JOBS,
        cache_dir=bench_cache_dir(),
        duration_s=BENCH_DURATION_S,
        seed=BENCH_SEED,
    )
    return workloads, labels, grid


def test_figure4_policy_spectrum(benchmark, report):
    workloads, labels, grid = run_once(benchmark, compute)

    rows = []
    for workload in workloads:
        rows.append(
            [workload]
            + [f"{grid[(workload, label)].mean_io_time_ms:.1f}" for label in labels]
        )
    report(
        format_table(
            ["workload"] + labels,
            rows,
            title=(
                "Figure 4: mean I/O time (ms) per trace across the policy spectrum, "
                "RAID 5 (left, most available) to RAID 0 (right, fastest)"
            ),
        )
    )

    for workload in workloads:
        series = [grid[(workload, label)].io_time.mean for label in labels]
        # The endpoints bracket the spectrum for every trace.
        assert series[-1] <= series[0], workload  # raid0 faster than raid5
        # No intermediate policy is meaningfully faster than RAID 0 or
        # slower than RAID 5 (10% tolerance for queueing noise).
        fastest, slowest = min(series), max(series)
        assert fastest >= series[-2] * 0.65, workload  # nothing far below afraid
        assert slowest <= series[0] * 1.35, workload

    # Bursty traces: the loose end of the MTTDL_x range performs within a
    # small factor of pure AFRAID (little need to revert), where the busy
    # traces still sit at RAID 5 speed there.
    loose_labels = [label for label in labels if label.startswith("MTTDL_")][-2:]
    for workload in BURSTY:
        afraid_mean = grid[(workload, "afraid")].io_time.mean
        for label in loose_labels:
            assert grid[(workload, label)].io_time.mean <= 2.75 * afraid_mean, (workload, label)

    # Busy traces: the spectrum spans a large performance range, with the
    # tight end near RAID 5 and the loose end near AFRAID.
    for workload in BUSY:
        raid5_mean = grid[(workload, "raid5")].io_time.mean
        afraid_mean = grid[(workload, "afraid")].io_time.mean
        assert raid5_mean / afraid_mean > 3.0, workload
        tight = grid[(workload, labels[1])].io_time.mean  # tightest MTTDL_x
        assert tight > 0.5 * raid5_mean, workload
